"""The GA engine (paper Section III.A, Figure 2).

The engine coordinates the whole flow: seed population → measure
individuals → create next generation (selection, crossover, mutation,
elitism) → repeat.  Measurement and fitness objects are supplied by the
caller (or loaded dynamically from a :class:`RunConfig`), keeping the
engine agnostic of *what* is being optimised — exactly the plug-and-play
structure the paper argues for.

Compile failures are tolerated: an individual whose generated source
does not assemble receives fitness 0 and stays in the records, it just
never wins a tournament.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import List, Optional, Protocol, Sequence, Union

from .config import RunConfig
from .errors import AssemblyError, ConfigError
from .individual import Individual, random_individual
from .operators import CROSSOVER_OPERATORS, mutate, tournament_select
from .output import OutputRecorder
from .population import Population, load_population
from .rng import make_rng
from .template import Template

__all__ = ["MeasurementProtocol", "FitnessProtocol", "ScreenProtocol",
           "ScreenReportProtocol", "GenerationStats", "RunHistory",
           "GeneticEngine"]


class MeasurementProtocol(Protocol):
    """What the engine needs from a measurement object (paper III.C)."""

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        """Compile and run ``source_text`` on the target, returning the
        list of measurement values (first one is the default fitness)."""
        ...


class FitnessProtocol(Protocol):
    """What the engine needs from a fitness object (paper III.C)."""

    def get_fitness(self, measurements: Sequence[float],
                    individual: Individual) -> float:
        ...


class ScreenReportProtocol(Protocol):
    """Verdict shape returned by a static screen."""

    passed: bool
    assembly_failed: bool


class ScreenProtocol(Protocol):
    """What the engine needs from a pre-measurement static screen
    (see :class:`repro.staticcheck.screen.StaticScreen`)."""

    def screen(self, source_text: str,
               individual: Individual) -> ScreenReportProtocol:
        ...


@dataclass
class GenerationStats:
    """Per-generation summary used for convergence analysis."""

    number: int
    best_fitness: float
    mean_fitness: float
    best_uid: int
    compile_failures: int
    #: Individuals rejected by the static screen before measurement
    #: (subset of the zero-fitness individuals; assembly-failure screens
    #: are also counted in ``compile_failures``).
    screen_failures: int = 0
    best_measurements: List[float] = field(default_factory=list)


@dataclass
class RunHistory:
    """The full trace of a GA run."""

    generations: List[GenerationStats] = field(default_factory=list)
    final_population: Optional[Population] = None
    best_individual: Optional[Individual] = None

    def best_fitness_series(self) -> List[float]:
        return [g.best_fitness for g in self.generations]

    def mean_fitness_series(self) -> List[float]:
        return [g.mean_fitness for g in self.generations]


class GeneticEngine:
    """Runs one GA search.

    Parameters
    ----------
    config:
        The run configuration (GA parameters, instruction library,
        template text, optional seed-population file).
    measurement, fitness:
        Plug-in objects; see the protocols above.
    recorder:
        Optional :class:`OutputRecorder`; when given, every individual
        source file and every generation binary is persisted per the
        paper's output conventions.
    rng:
        Optional explicit random stream; defaults to one seeded from
        ``config.ga.seed``.
    checkpoint_path:
        Optional file updated after every generation with the full
        engine state (population, RNG stream, uid counter).  A run of
        the paper's scale is hours of measurements; ``resume`` restarts
        an interrupted search from the last completed generation with
        bit-identical behaviour.
    screen:
        Optional pre-measurement static screen (see
        :class:`repro.staticcheck.screen.StaticScreen`).  Individuals
        the screen rejects are recorded as zero-fitness screen failures
        without entering the measurement path; counts appear in
        :class:`GenerationStats`.
    """

    def __init__(self, config: RunConfig,
                 measurement: MeasurementProtocol,
                 fitness: FitnessProtocol,
                 recorder: Optional[OutputRecorder] = None,
                 rng: Optional[Random] = None,
                 checkpoint_path: Optional[Union[str, Path]] = None,
                 screen: Optional[ScreenProtocol] = None
                 ) -> None:
        config.validate()
        self.config = config
        self.measurement = measurement
        self.fitness = fitness
        self.recorder = recorder
        self.rng = rng if rng is not None else make_rng(config.ga.seed)
        self.screen = screen
        self.template = Template(config.template_text)
        self._crossover = CROSSOVER_OPERATORS[config.ga.crossover_operator]
        self._next_uid = 0
        self._best: Optional[Individual] = None
        self.checkpoint_path = Path(checkpoint_path) \
            if checkpoint_path is not None else None
        self._resume_state: Optional[dict] = None
        if recorder is not None:
            recorder.record_provenance(config)

    # -- public API ---------------------------------------------------------

    def run(self, generations: Optional[int] = None) -> RunHistory:
        """Execute the GA for ``generations`` (default: config value)."""
        total = generations if generations is not None \
            else self.config.ga.generations
        if total < 1:
            raise ConfigError("generations must be >= 1")

        history = RunHistory()
        if self._resume_state is not None:
            state = self._resume_state
            self._resume_state = None
            population = state["population"]
            self._next_uid = state["next_uid"]
            self._best = state["best"]
            self.rng.setstate(state["rng_state"])
            start = state["generation"] + 1
            if start >= total:
                raise ConfigError(
                    f"checkpoint already covers generation "
                    f"{state['generation']} of a {total}-generation run")
            population = self._breed(population, start)
        else:
            population = self._seed_population()
            start = 0
        for number in range(start, total):
            population.number = number
            for individual in population:
                individual.generation = number
            self._evaluate_population(population)
            self._record_generation(population, history)
            if number < total - 1:
                population = self._breed(population, number + 1)

        history.final_population = population
        history.best_individual = self._best
        return history

    def render_source(self, individual: Individual) -> str:
        """Instantiate the template with an individual's loop body."""
        return self.template.instantiate(individual.render_body())

    # -- GA steps -------------------------------------------------------------

    def _seed_population(self) -> Population:
        """Random initial population, or one loaded from a previous run
        (paper III.D: population binaries can seed a new search)."""
        ga = self.config.ga
        if self.config.seed_population_file is not None:
            loaded = load_population(self.config.seed_population_file,
                                     expected_size=ga.population_size)
            individuals = []
            for individual in loaded:
                clone = individual.clone(uid=self._take_uid())
                individuals.append(clone)
            return Population(individuals, number=0)
        individuals = [
            random_individual(self.config.library, ga.individual_size,
                              self.rng, uid=self._take_uid())
            for _ in range(ga.population_size)
        ]
        return Population(individuals, number=0)

    def _evaluate_population(self, population: Population) -> None:
        for individual in population:
            if individual.evaluated:
                continue
            source = self.render_source(individual)
            if self.screen is not None:
                report = self.screen.screen(source, individual)
                if not report.passed:
                    # Same zero-fitness path as a compile failure, but
                    # the individual never enters the pipeline model.
                    individual.record_evaluation(
                        [0.0], 0.0,
                        compile_failed=report.assembly_failed,
                        screen_failed=True)
                    if self.recorder is not None:
                        self.recorder.record_individual(individual, source)
                    self._update_best(individual)
                    continue
            measure = getattr(self.measurement, "measure_repeated",
                              self.measurement.measure)
            try:
                measurements = measure(source, individual)
            except AssemblyError:
                individual.record_evaluation([0.0], 0.0, compile_failed=True)
            else:
                if not measurements:
                    # Persist what this generation has produced so far —
                    # an hours-long run should not lose the partial
                    # generation to a measurement plug-in bug.
                    if self.checkpoint_path is not None:
                        self.save_checkpoint(population)
                    raise ConfigError(
                        f"measurement "
                        f"{type(self.measurement).__name__!r} returned "
                        f"an empty result list for individual "
                        f"uid={individual.uid} in generation "
                        f"{individual.generation}")
                value = self.fitness.get_fitness(measurements, individual)
                individual.record_evaluation(measurements, value)
            if self.recorder is not None:
                self.recorder.record_individual(individual, source)
            self._update_best(individual)

    def _breed(self, population: Population, next_number: int) -> Population:
        """Create the next generation (paper Figure 3)."""
        ga = self.config.ga
        children: List[Individual] = []

        if ga.elitism:
            elite = population.fittest()
            children.append(elite.clone(uid=self._take_uid(),
                                        parent_ids=(elite.uid,)))

        while len(children) < ga.population_size:
            parent1 = tournament_select(population.individuals, self.rng,
                                        ga.tournament_size)
            parent2 = tournament_select(population.individuals, self.rng,
                                        ga.tournament_size)
            genome1, genome2 = self._crossover(parent1, parent2, self.rng)
            for genome in (genome1, genome2):
                if len(children) >= ga.population_size:
                    break
                mutated = mutate(genome, self.config.library, self.rng,
                                 ga.mutation_rate, ga.operand_mutation_share)
                children.append(Individual(
                    mutated, uid=self._take_uid(),
                    parent_ids=(parent1.uid, parent2.uid)))

        return Population(children, number=next_number)

    # -- bookkeeping -----------------------------------------------------------

    def _take_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _update_best(self, individual: Individual) -> None:
        if individual.fitness is None:
            return
        if self._best is None or (self._best.fitness is not None and
                                  individual.fitness > self._best.fitness):
            self._best = individual

    # -- checkpoint / resume ----------------------------------------------

    def save_checkpoint(self, population: Population) -> Path:
        """Persist the engine state after a completed generation."""
        if self.checkpoint_path is None:
            raise ConfigError("engine has no checkpoint path configured")
        payload = {
            "format": "gest-repro-checkpoint",
            "version": 1,
            "generation": population.number,
            "population": population,
            "next_uid": self._next_uid,
            "best": self._best,
            "rng_state": self.rng.getstate(),
        }
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.checkpoint_path.with_suffix(".tmp")
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=4)
        temp.replace(self.checkpoint_path)
        return self.checkpoint_path

    @classmethod
    def resume(cls, config: RunConfig,
               measurement: MeasurementProtocol,
               fitness: FitnessProtocol,
               checkpoint_path: Union[str, Path],
               recorder: Optional[OutputRecorder] = None,
               screen: Optional[ScreenProtocol] = None
               ) -> "GeneticEngine":
        """Rebuild an engine from a checkpoint file.

        The next :meth:`run` continues from the generation after the
        checkpointed one and reproduces exactly what the uninterrupted
        run would have produced (population, RNG stream and uid counter
        are all restored).
        """
        checkpoint_path = Path(checkpoint_path)
        if not checkpoint_path.exists():
            raise ConfigError(
                f"checkpoint {checkpoint_path} does not exist")
        with open(checkpoint_path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or \
                payload.get("format") != "gest-repro-checkpoint":
            raise ConfigError(
                f"{checkpoint_path} is not a checkpoint file")
        version = payload.get("version")
        if version != 1:
            raise ConfigError(
                f"checkpoint {checkpoint_path} has unsupported version "
                f"{version!r}; this build reads version 1 — re-run the "
                "search or convert the checkpoint with the writing "
                "version")
        engine = cls(config, measurement, fitness, recorder=recorder,
                     checkpoint_path=checkpoint_path, screen=screen)
        engine._resume_state = payload
        return engine

    def _record_generation(self, population: Population,
                           history: RunHistory) -> None:
        best = population.fittest()
        stats = GenerationStats(
            number=population.number,
            best_fitness=best.fitness if best.fitness is not None else 0.0,
            mean_fitness=population.mean_fitness(),
            best_uid=best.uid,
            compile_failures=sum(1 for i in population if i.compile_failed),
            screen_failures=sum(1 for i in population
                                if getattr(i, "screen_failed", False)),
            best_measurements=list(best.measurements),
        )
        history.generations.append(stats)
        if self.recorder is not None:
            self.recorder.record_population(population)
        if self.checkpoint_path is not None:
            self.save_checkpoint(population)
