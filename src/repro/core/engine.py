"""The search engine (paper Section III.A, Figure 2).

The engine is a thin orchestrator over two pluggable layers.  A
:class:`~repro.search.SearchStrategy` proposes populations — the
default ``genetic`` strategy is the paper's GA (selection, crossover,
mutation, elitism), with ``random`` / ``hill_climb`` /
``simulated_annealing`` available for the paper's baseline comparisons.
Evaluation — render, screen, measure, score — lives in the staged
:mod:`repro.evaluation` layer, which the engine drives through a
:class:`~repro.evaluation.evaluator.StagedEvaluator`: a pluggable
executor backend (serial, or a process pool replicating the simulated
board per worker — the paper measures on multiple boards the same way)
plus an optional content-addressed evaluation cache.  Results merge
back in deterministic uid order, so every backend/cache/strategy
combination yields bit-identical populations, checkpoints and run
histories for the same strategy and seed.

The loop per generation: evaluate → ``strategy.observe`` (internal
state updates, e.g. the annealer's accept/reject walk) → record +
checkpoint → ``strategy.next_population``.  Checkpoints carry the
strategy's name and serialized state, so a resumed run continues the
same search from exactly where it stopped.

Compile failures are tolerated: an individual whose generated source
does not assemble receives fitness 0 and stays in the records, it just
never wins a tournament.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import asdict, dataclass, field
from pathlib import Path
from random import Random
from typing import Callable, List, Optional, Sequence, Union

from ..evaluation.backends import AutoSelectBackend, BatchedBackend, \
    ExecutorBackend, ProcessPoolBackend, SerialBackend
from ..evaluation.cache import EvaluationCache
from ..evaluation.evaluator import GenerationOutcome, StagedEvaluator
from ..evaluation.pipeline import (EvaluationPipeline, FitnessProtocol,
                                   MeasurementProtocol, ScreenProtocol,
                                   ScreenReportProtocol, StageTimings)
from ..search import SearchStrategy, make_strategy
from .config import RunConfig, config_to_xml
from .errors import ConfigError
from .events import (STATS_SCHEMA_VERSION, CheckpointWritten,
                     GenerationCompleted, IndividualEvaluated, RunEvent,
                     RunFinished, RunRecorder, RunStarted, as_recorders)
from .individual import Individual
from .population import Population
from .rng import make_rng
from .template import Template

__all__ = ["MeasurementProtocol", "FitnessProtocol", "ScreenProtocol",
           "ScreenReportProtocol", "GenerationStats", "RunHistory",
           "GeneticEngine", "WORKERS_ENV_VAR", "derive_run_id"]

#: Environment override for the evaluation worker count (CI runs the
#: suite under a 2-worker backend this way).  Explicit ``backend`` or
#: ``workers`` arguments win over the environment.
WORKERS_ENV_VAR = "GEST_EVAL_WORKERS"


@dataclass
class GenerationStats:
    """Per-generation summary used for convergence analysis.

    The observability fields (``compare=False``) — per-stage timings
    and cache/screen/measure counters — are excluded from equality so
    run histories compare identical across executor backends and cache
    settings, where wall-clock and hit counts legitimately differ.
    """

    number: int
    best_fitness: float
    mean_fitness: float
    best_uid: int
    compile_failures: int
    #: Individuals rejected by the static screen before measurement
    #: (subset of the zero-fitness individuals; assembly-failure screens
    #: are also counted in ``compile_failures``).
    screen_failures: int = 0
    best_measurements: List[float] = field(default_factory=list)
    #: Which search strategy proposed this generation; lets analysis
    #: scripts tell GA and baseline runs apart in stats.jsonl.
    strategy: str = "genetic"
    #: Surrogate-search record for this generation, when the strategy
    #: publishes one through ``generation_metrics()`` (the
    #: ``static_rank`` wrapper reports simulated/pruned/replayed counts
    #: and the static-vs-simulated Spearman rank correlation here; it
    #: lands in stats.jsonl).  Excluded from equality like the other
    #: observability fields.
    surrogate: Optional[dict] = field(default=None, compare=False)
    #: Individuals satisfied from the evaluation cache this pass.
    cache_hits: int = field(default=0, compare=False)
    #: Individuals that entered the measure stage this pass.
    measured: int = field(default=0, compare=False)
    #: Individuals that entered the screen stage this pass.
    screened: int = field(default=0, compare=False)
    #: Target-machine compile-cache traffic for this pass (mutation and
    #: crossover re-render many identical sources, so assembly repeats;
    #: the machine caches Program objects content-addressed on source).
    compile_cache_hits: int = field(default=0, compare=False)
    compile_cache_misses: int = field(default=0, compare=False)
    #: Cumulative per-stage evaluation seconds for this generation.
    timings: StageTimings = field(default_factory=StageTimings,
                                  compare=False)
    #: Which execution engine evaluated this generation's cache misses
    #: ("serial", "batched", "pool") and — for auto-selecting backends
    #: — why it was chosen.  Observability only, like the timings.
    backend: str = field(default="", compare=False)
    backend_reason: str = field(default="", compare=False)


@dataclass
class RunHistory:
    """The full trace of a GA run."""

    generations: List[GenerationStats] = field(default_factory=list)
    final_population: Optional[Population] = None
    best_individual: Optional[Individual] = None
    #: Which run produced this history (stable content-derived id, or
    #: the id a service assigned at submission).
    run_id: Optional[str] = None
    #: True when the run stopped early through a ``stop_check`` hook
    #: (graceful service cancellation) rather than finishing all
    #: requested generations.
    cancelled: bool = False

    def best_fitness_series(self) -> List[float]:
        return [g.best_fitness for g in self.generations]

    def mean_fitness_series(self) -> List[float]:
        return [g.mean_fitness for g in self.generations]


def derive_run_id(config: RunConfig, strategy_name: str) -> str:
    """A stable, content-derived run identifier.

    Hashes the serialized configuration and the strategy name, so the
    same search is the same run id on every machine and every replay —
    no wall clock, no hostname.  Services that need *distinct* ids for
    repeated submissions of one config assign their own
    (:meth:`repro.store.RunStore.submit_run`) and pass it to the engine
    instead.
    """
    digest = hashlib.sha256()
    digest.update(config_to_xml(config, template_filename="template.s",
                                results_dir="results").encode("utf-8"))
    digest.update(b"\x00")
    digest.update(strategy_name.encode("utf-8"))
    return "run-" + digest.hexdigest()[:12]


def _resolve_backend(name: Optional[str],
                     workers: int) -> ExecutorBackend:
    """Build the executor backend for a name/worker-count pair.

    ``workers == 0`` means "auto": size the worker pool from the
    machine and let :class:`AutoSelectBackend` route each generation.
    With ``name`` empty/"auto", one worker keeps the classic
    :class:`SerialBackend` and several workers get the auto-selector —
    which falls back to serial or batched execution on generations too
    small to amortise the pool, instead of silently losing to fork and
    pickle overhead as the unconditional pool default did.
    """
    if workers < 0:
        raise ConfigError(
            f"evaluation workers must be >= 0 (0 = auto), got {workers}")
    pool_workers = workers if workers > 0 else (os.cpu_count() or 1)
    label = (name or "auto").strip().lower()
    if label == "serial":
        return SerialBackend()
    if label == "batched":
        return BatchedBackend()
    if label == "pool":
        return ProcessPoolBackend(pool_workers)
    if label == "auto":
        if workers == 1:
            return SerialBackend()
        return AutoSelectBackend(pool_workers)
    raise ConfigError(
        f"unknown evaluation backend {name!r}; expected one of "
        "serial, batched, pool, auto")


def _workers_from_environment() -> Optional[int]:
    raw = os.environ.get(WORKERS_ENV_VAR)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ConfigError(
            f"{WORKERS_ENV_VAR}={raw!r} is not an integer worker count")


class GeneticEngine:
    """Runs one GA search.

    Parameters
    ----------
    config:
        The run configuration (GA parameters, instruction library,
        template text, optional seed-population file, evaluation
        settings).
    measurement, fitness:
        Plug-in objects; see the protocols in
        :mod:`repro.evaluation.pipeline`.  The measurement must
        implement both ``measure`` and ``measure_repeated`` — a plug-in
        missing either fails here, at construction, rather than
        silently measuring single-shot.
    recorder:
        Optional :class:`~repro.core.events.RunRecorder` — or a
        sequence of them — subscribed to the engine's event stream
        (run_started, individual_evaluated, generation_completed,
        checkpoint_written, run_finished).  A
        :class:`~repro.core.output.FileRecorder` here reproduces the
        paper's results-directory layout; a
        :class:`~repro.store.StoreRecorder` persists the run into the
        sqlite result store; both at once tee the stream.
    rng:
        Optional explicit random stream; defaults to one seeded from
        ``config.ga.seed``.
    checkpoint_path:
        Optional file updated after every generation with the full
        engine state (population, RNG stream, uid counter).  A run of
        the paper's scale is hours of measurements; ``resume`` restarts
        an interrupted search from the last completed generation with
        bit-identical behaviour.
    screen:
        Optional pre-measurement static screen (see
        :class:`repro.staticcheck.screen.StaticScreen`).  Individuals
        the screen rejects are recorded as zero-fitness screen failures
        without entering the measurement path; counts appear in
        :class:`GenerationStats`.
    backend:
        Optional explicit :class:`ExecutorBackend` instance, or one of
        the names ``"serial"``, ``"batched"``, ``"pool"``, ``"auto"``
        (also settable via ``<evaluation backend=...>`` in the config).
        Defaults from ``workers``: 1 → :class:`SerialBackend`, 0 (auto)
        or N > 1 → :class:`AutoSelectBackend`, which sizes each
        generation against measured crossover points instead of
        unconditionally paying process-pool overhead.
    cache:
        Optional explicit :class:`EvaluationCache`; defaults to a fresh
        cache when ``config.evaluation.cache`` is set.
    workers:
        Worker count when no explicit backend instance is given; wins
        over the ``GEST_EVAL_WORKERS`` environment variable, which in
        turn wins over ``config.evaluation.workers``.  ``0`` means
        "auto" — let :class:`AutoSelectBackend` size the pool from the
        machine — in the argument, the environment variable and the
        config alike.
    strategy:
        Which search proposes populations: a registered strategy name,
        a ready :class:`~repro.search.SearchStrategy` instance, or
        ``None`` for the config's ``<search>`` block (default
        ``genetic`` — the paper's GA).  A name matching the config's
        strategy picks up the config's strategy parameters; a different
        name runs with that strategy's defaults.
    run_id:
        Explicit run identity stamped into every stats record and
        event; defaults to the content-derived :func:`derive_run_id`.
    """

    def __init__(self, config: RunConfig,
                 measurement: MeasurementProtocol,
                 fitness: FitnessProtocol,
                 recorder: Union[None, RunRecorder,
                                 Sequence[RunRecorder]] = None,
                 rng: Optional[Random] = None,
                 checkpoint_path: Optional[Union[str, Path]] = None,
                 screen: Optional[ScreenProtocol] = None,
                 backend: Optional[Union[ExecutorBackend, str]] = None,
                 cache: Optional[EvaluationCache] = None,
                 workers: Optional[int] = None,
                 strategy: Optional[Union[str, SearchStrategy]] = None,
                 run_id: Optional[str] = None
                 ) -> None:
        config.validate()
        self.config = config
        self.measurement = measurement
        self.fitness = fitness
        self.recorders = as_recorders(recorder)
        self.recorder = self.recorders[0] if self.recorders else None
        self.rng = rng if rng is not None else make_rng(config.ga.seed)
        self.screen = screen
        self.template = Template(config.template_text)
        self._next_uid = 0
        self._best: Optional[Individual] = None
        self.checkpoint_path = Path(checkpoint_path) \
            if checkpoint_path is not None else None
        self._resume_state: Optional[dict] = None
        self._last_outcome: Optional[GenerationOutcome] = None

        if strategy is None:
            strategy = config.search.strategy
        if isinstance(strategy, SearchStrategy):
            self.strategy = strategy
        else:
            params = config.search.params \
                if strategy == config.search.strategy else None
            self.strategy = make_strategy(strategy, params)
        self.strategy.bind(config, self.rng, self._take_uid)

        pipeline = EvaluationPipeline(
            template=self.template, measurement=measurement,
            fitness=fitness, screen=screen,
            noise_seed=config.ga.seed if config.ga.seed is not None else 0)
        if not isinstance(backend, ExecutorBackend):
            if workers is None:
                workers = _workers_from_environment()
            if workers is None:
                workers = config.evaluation.workers
            if backend is None:
                backend = config.evaluation.backend
            backend = _resolve_backend(backend, workers)
        if cache is None and config.evaluation.cache:
            cache = EvaluationCache(self._cache_fingerprint(pipeline))
        self.evaluator = StagedEvaluator(pipeline, backend=backend,
                                         cache=cache)
        # Strategies that learn from past evaluations (the surrogate
        # wrapper) may hook the evaluator once it exists — e.g. to
        # snapshot the cache into a training warm-start.
        warm_start = getattr(self.strategy, "warm_start", None)
        if callable(warm_start):
            warm_start(self.evaluator)
        self.run_id = run_id if run_id is not None \
            else derive_run_id(config, self.strategy.name)

    def _cache_fingerprint(self, pipeline: EvaluationPipeline) -> str:
        fingerprint = getattr(self.measurement, "fingerprint", None)
        base = fingerprint() if callable(fingerprint) else \
            f"{type(self.measurement).__module__}." \
            f"{type(self.measurement).__qualname__}"
        return f"{base}|noise_seed={pipeline.noise_seed}"

    # -- public API ---------------------------------------------------------

    def run(self, generations: Optional[int] = None,
            stop_check: Optional[Callable[[], bool]] = None) -> RunHistory:
        """Execute the search for ``generations`` (default: config
        value).

        ``stop_check`` is polled between generations; returning True
        stops the run gracefully after the current generation is fully
        recorded and checkpointed (``history.cancelled`` is set).  The
        service layer uses it for cooperative cancellation — a
        cancelled run resumes later from its checkpoint.
        """
        total = generations if generations is not None \
            else self.config.ga.generations
        if total < 1:
            raise ConfigError("generations must be >= 1")

        history = RunHistory(run_id=self.run_id)
        resumed = self._resume_state is not None
        self._emit(RunStarted(
            run_id=self.run_id, config=self.config,
            strategy=self.strategy.name, seed=self.config.ga.seed,
            resumed=resumed))
        if self._resume_state is not None:
            state = self._resume_state
            self._resume_state = None
            population = state["population"]
            self._next_uid = state["next_uid"]
            self._best = state["best"]
            self.rng.setstate(state["rng_state"])
            if any(not individual.evaluated for individual in population):
                # A mid-generation checkpoint (e.g. the empty-measurement
                # abort path): finish evaluating this generation before
                # breeding past it instead of discarding the unevaluated
                # individuals.
                start = state["generation"]
                if start >= total:
                    raise ConfigError(
                        f"checkpoint holds a partially evaluated "
                        f"generation {start}, past the requested "
                        f"{total}-generation run")
            else:
                start = state["generation"] + 1
                if start >= total:
                    raise ConfigError(
                        f"checkpoint already covers generation "
                        f"{state['generation']} of a {total}-generation "
                        "run")
                population = self.strategy.next_population(population, start)
        else:
            population = self.strategy.initial_population()
            start = 0
        try:
            for number in range(start, total):
                population.number = number
                for individual in population:
                    individual.generation = number
                self._evaluate_population(population)
                self.strategy.observe(population)
                self._record_generation(population, history)
                if number < total - 1:
                    if stop_check is not None and stop_check():
                        history.cancelled = True
                        break
                    population = self.strategy.next_population(
                        population, number + 1)
        finally:
            self.evaluator.close()

        history.final_population = population
        history.best_individual = self._best
        self._emit(RunFinished(
            run_id=self.run_id, best=self._best,
            generations=len(history.generations),
            cancelled=history.cancelled))
        return history

    def render_source(self, individual: Individual) -> str:
        """Instantiate the template with an individual's loop body."""
        return self.evaluator.pipeline.render(individual)

    # -- search steps ---------------------------------------------------------

    def _evaluate_population(self, population: Population) -> None:
        """Drive the staged evaluator and merge results in uid order."""
        outcome = self.evaluator.evaluate_population(population)
        self._last_outcome = outcome
        by_uid = {individual.uid: individual for individual in population}
        for result in outcome.results:
            individual = by_uid[result.uid]
            individual.record_evaluation(
                result.measurements, result.fitness,
                compile_failed=result.compile_failed,
                screen_failed=result.screen_failed)
            self._emit(IndividualEvaluated(
                run_id=self.run_id, individual=individual,
                source=result.source))
            self._update_best(individual)
        if outcome.error is not None:
            # Persist what this generation has produced so far — an
            # hours-long run should not lose the partial generation to
            # a measurement plug-in bug.
            if self.checkpoint_path is not None:
                self.save_checkpoint(population)
            raise outcome.error

    # -- bookkeeping -----------------------------------------------------------

    def _emit(self, event: RunEvent) -> None:
        for recorder in self.recorders:
            recorder.handle(event)

    def _take_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _update_best(self, individual: Individual) -> None:
        if individual.fitness is None:
            return
        if self._best is None or (self._best.fitness is not None and
                                  individual.fitness > self._best.fitness):
            self._best = individual

    # -- checkpoint / resume ----------------------------------------------

    def save_checkpoint(self, population: Population) -> Path:
        """Persist the engine state after a completed generation.

        Version 2 carries the search-strategy name and its serialized
        state next to the population/RNG/uid snapshot, so any strategy
        — not just the stateless-between-generations GA — resumes from
        exactly where it stopped.
        """
        if self.checkpoint_path is None:
            raise ConfigError("engine has no checkpoint path configured")
        payload = {
            "format": "gest-repro-checkpoint",
            "version": 2,
            "generation": population.number,
            "population": population,
            "next_uid": self._next_uid,
            "best": self._best,
            "rng_state": self.rng.getstate(),
            "strategy": self.strategy.name,
            "strategy_state": self.strategy.state_dict(),
            "run_id": self.run_id,
        }
        self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.checkpoint_path.with_suffix(".tmp")
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=4)
        temp.replace(self.checkpoint_path)
        self._emit(CheckpointWritten(
            run_id=self.run_id, path=self.checkpoint_path,
            generation=population.number))
        return self.checkpoint_path

    @classmethod
    def resume(cls, config: RunConfig,
               measurement: MeasurementProtocol,
               fitness: FitnessProtocol,
               checkpoint_path: Union[str, Path],
               recorder: Union[None, RunRecorder,
                               Sequence[RunRecorder]] = None,
               screen: Optional[ScreenProtocol] = None,
               backend: Optional[ExecutorBackend] = None,
               cache: Optional[EvaluationCache] = None,
               workers: Optional[int] = None,
               strategy: Optional[Union[str, SearchStrategy]] = None,
               run_id: Optional[str] = None
               ) -> "GeneticEngine":
        """Rebuild an engine from a checkpoint file.

        The next :meth:`run` continues from the generation after the
        checkpointed one and reproduces exactly what the uninterrupted
        run would have produced (population, RNG stream, uid counter
        and strategy state are all restored).  A checkpoint holding a
        *partially evaluated* generation — written by the abort path
        when a measurement plug-in returns no values — is finished
        first: its unevaluated individuals go back through the
        evaluation pipeline before breeding continues.

        A version-1 checkpoint (pre-search-layer) is migrated in place:
        those were written by the only search that existed — the
        paper's GA — so it resumes under the ``genetic`` strategy and
        under nothing else.  The checkpoint's strategy must match the
        engine's: resuming a ``random`` checkpoint under ``genetic``
        would silently turn one search into another, so it fails with
        both names spelled out instead.
        """
        checkpoint_path = Path(checkpoint_path)
        if not checkpoint_path.exists():
            raise ConfigError(
                f"checkpoint {checkpoint_path} does not exist")
        with open(checkpoint_path, "rb") as handle:
            payload = pickle.load(handle)
        if not isinstance(payload, dict) or \
                payload.get("format") != "gest-repro-checkpoint":
            raise ConfigError(
                f"{checkpoint_path} is not a checkpoint file")
        version = payload.get("version")
        if version == 1:
            # Pre-search-layer checkpoints carry no strategy marker;
            # they were necessarily written by the genetic engine.
            payload = dict(payload)
            payload["strategy"] = "genetic"
            payload["strategy_state"] = {}
        elif version != 2:
            raise ConfigError(
                f"checkpoint {checkpoint_path} has unsupported version "
                f"{version!r}; this build reads versions 1 (migrated "
                "to the genetic strategy) and 2 — re-run the search or "
                "convert the checkpoint with the writing version")
        if run_id is None:
            # A checkpoint written by this build remembers its run
            # identity; adopt it so the resumed half of the run lands
            # under the same id in stores and stats records.
            run_id = payload.get("run_id")
        engine = cls(config, measurement, fitness, recorder=recorder,
                     checkpoint_path=checkpoint_path, screen=screen,
                     backend=backend, cache=cache, workers=workers,
                     strategy=strategy, run_id=run_id)
        saved_strategy = payload.get("strategy")
        if saved_strategy != engine.strategy.name:
            raise ConfigError(
                f"checkpoint {checkpoint_path} was written by search "
                f"strategy {saved_strategy!r} but this run uses "
                f"{engine.strategy.name!r}; resume with "
                f"strategy={saved_strategy!r} (CLI: --strategy "
                f"{saved_strategy}) or start a fresh run")
        engine.strategy.load_state(payload.get("strategy_state") or {})
        engine._resume_state = payload
        return engine

    def _record_generation(self, population: Population,
                           history: RunHistory) -> None:
        best = population.fittest()
        outcome = self._last_outcome
        stats = GenerationStats(
            number=population.number,
            best_fitness=best.fitness if best.fitness is not None else 0.0,
            mean_fitness=population.mean_fitness(),
            best_uid=best.uid,
            compile_failures=sum(1 for i in population if i.compile_failed),
            screen_failures=sum(1 for i in population
                                if getattr(i, "screen_failed", False)),
            best_measurements=list(best.measurements),
            strategy=self.strategy.name,
        )
        metrics = getattr(self.strategy, "generation_metrics", None)
        if callable(metrics):
            stats.surrogate = metrics(population.number)
        if outcome is not None:
            stats.cache_hits = outcome.cache_hits
            stats.measured = outcome.measured
            stats.screened = outcome.screened
            stats.compile_cache_hits = outcome.compile_cache_hits
            stats.compile_cache_misses = outcome.compile_cache_misses
            stats.timings = outcome.timings
            stats.backend = outcome.backend
            stats.backend_reason = outcome.backend_reason
        history.generations.append(stats)
        record = {"schema": STATS_SCHEMA_VERSION, "run_id": self.run_id,
                  **asdict(stats)}
        self._emit(GenerationCompleted(
            run_id=self.run_id, population=population, stats=record))
        if self.checkpoint_path is not None:
            self.save_checkpoint(population)
