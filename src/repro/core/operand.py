"""Operand definitions (paper Section III.B.1, Figure 4).

An *operand definition* names a pool of concrete values an instruction
slot may take.  The paper defines two kinds:

* **register operands** — an explicit, space-separated list of register
  names (``values="x2 x3 x4"``);
* **immediate operands** — an integer range expressed as ``min``/``max``/
  ``stride`` (``min=0 max=256 stride=8`` yields 0, 8, ..., 256).

Operand definitions are shared between instructions: the same
``mem_address_register`` pool can serve ``LDR``, ``STR``, ``LDP`` and
``STP``.  The paper also uses *disjoint* register pools to force or
forbid dependencies between instruction groups (e.g. keep integer ops
off load-result registers when maximising IPC); nothing in this module
needs to know about that — it falls out of how pools are declared.

This reproduction adds a third kind, :class:`LabelOperand`, used by
branch definitions whose targets are assembler-local labels rather than
registers or immediates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from random import Random
from typing import List, Sequence

from .errors import ConfigError

__all__ = [
    "Operand",
    "RegisterOperand",
    "ImmediateOperand",
    "LabelOperand",
]


class Operand(ABC):
    """A named pool of concrete operand values.

    Subclasses provide :meth:`choices`, the full enumeration of values
    the GA may pick from.  Values are already *rendered* — they are the
    exact strings substituted into an instruction's format string.
    """

    kind: str = "abstract"

    def __init__(self, operand_id: str) -> None:
        if not operand_id:
            raise ConfigError("operand id must be a non-empty string")
        self.id = operand_id

    @abstractmethod
    def choices(self) -> Sequence[str]:
        """Every value this operand may take, in a stable order."""

    def cardinality(self) -> int:
        """Number of distinct values (the paper multiplies these to
        count an instruction's possible forms, e.g. 3 x 1 x 33 = 99 for
        the Figure 4 LDR)."""
        return len(self.choices())

    def sample(self, rng: Random) -> str:
        """Draw one value uniformly at random."""
        options = self.choices()
        if not options:
            raise ConfigError(f"operand {self.id!r} has no values to sample")
        return options[rng.randrange(len(options))]

    def contains(self, value: str) -> bool:
        return value in self.choices()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(id={self.id!r}, n={self.cardinality()})"


class RegisterOperand(Operand):
    """A pool of register names, e.g. ``x2 x3 x4``."""

    kind = "register"

    def __init__(self, operand_id: str, values: Sequence[str]) -> None:
        super().__init__(operand_id)
        cleaned = [v for v in values if v]
        if not cleaned:
            raise ConfigError(
                f"register operand {operand_id!r} needs at least one register")
        seen = set()
        unique: List[str] = []
        for name in cleaned:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        self._values = tuple(unique)

    @classmethod
    def from_string(cls, operand_id: str, values: str) -> "RegisterOperand":
        """Parse the config-file form: a space-separated register list."""
        return cls(operand_id, values.split())

    def choices(self) -> Sequence[str]:
        return self._values


class ImmediateOperand(Operand):
    """An integer range ``min..max`` in steps of ``stride``.

    Rendered values are plain decimal strings; the instruction format
    string supplies any ISA-specific sigil (``#`` for ARM).
    """

    kind = "immediate"

    def __init__(self, operand_id: str, minimum: int, maximum: int,
                 stride: int = 1) -> None:
        super().__init__(operand_id)
        if stride <= 0:
            raise ConfigError(
                f"immediate operand {operand_id!r}: stride must be positive")
        if maximum < minimum:
            raise ConfigError(
                f"immediate operand {operand_id!r}: max {maximum} < min {minimum}")
        self.minimum = int(minimum)
        self.maximum = int(maximum)
        self.stride = int(stride)
        self._values = tuple(
            str(v) for v in range(self.minimum, self.maximum + 1, self.stride))

    def choices(self) -> Sequence[str]:
        return self._values


class LabelOperand(Operand):
    """A pool of assembler label tokens for branch targets.

    Stress loops want *predictable, taken* branches (the paper reports
    power viruses have very predictable branches), so the default pool
    is the single token the ARM-like/x86-like assemblers understand as
    "branch to the immediately following instruction".
    """

    kind = "label"

    def __init__(self, operand_id: str, values: Sequence[str] = ("1f",)) -> None:
        super().__init__(operand_id)
        if not values:
            raise ConfigError(
                f"label operand {operand_id!r} needs at least one label")
        self._values = tuple(values)

    def choices(self) -> Sequence[str]:
        return self._values
