"""Configuration model and XML parsing (paper Section III.B.1, Table I).

GeST is driven by a *main configuration file* — an XML document that
specifies (a) the GA engine parameters of Table I, (b) the instruction
and operand definitions used in the search, and (c) run plumbing: the
results directory, the template source file, and the names of the
measurement and fitness classes to load dynamically.

This module provides both the parsed dataclasses (so tests and
experiments can construct configurations programmatically) and the XML
reader/writer for file-driven use, mirroring the original tool's
workflow.

Example document::

    <gest_config>
      <ga population_size="50" individual_size="50" mutation_rate="0.02"
          crossover_operator="one_point" elitism="true"
          parent_selection_method="tournament" tournament_size="5"
          generations="100" seed="42"/>
      <paths results_dir="results/run1" template="templates/arm.s"/>
      <measurement class="repro.measurement.power.PowerMeasurement"
                   config="measurement.xml"/>
      <fitness class="repro.fitness.default_fitness.DefaultFitness"/>
      <search strategy="genetic"/>
      <seed_population file="results/run0/population_20.bin"/>
      <operands>
        <operand id="mem_address_register" type="register" values="x10"/>
        <operand id="immediate_value" type="immediate"
                 min="0" max="256" stride="8"/>
      </operands>
      <instructions>
        <instruction name="LDR" num_of_operands="3"
                     operand1="mem_result"
                     operand2="mem_address_register"
                     operand3="immediate_value"
                     format="LDR op1, [op2, #op3]" type="mem"/>
      </instructions>
    </gest_config>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .errors import ConfigError
from .instruction import InstructionLibrary, InstructionSpec
from .operand import ImmediateOperand, LabelOperand, Operand, RegisterOperand

__all__ = [
    "GAParameters",
    "EvaluationParameters",
    "SearchParameters",
    "RunConfig",
    "parse_config_file",
    "parse_config_text",
    "parse_measurement_config",
    "config_to_xml",
]


@dataclass
class GAParameters:
    """Table I of the paper, with the paper's default values.

    ``individual_size`` defaults to 50 — the paper uses 15–50 loop
    instructions depending on the target metric; 50 is the power/IPC
    setting, dI/dt searches derive theirs from the resonance rule of
    thumb (see :func:`repro.experiments.didt_virus.didt_loop_length`).
    """

    population_size: int = 50
    individual_size: int = 50
    mutation_rate: float = 0.02
    crossover_operator: str = "one_point"
    elitism: bool = True
    parent_selection_method: str = "tournament"
    tournament_size: int = 5
    generations: int = 100
    operand_mutation_share: float = 0.5
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.population_size < 2:
            raise ConfigError("population_size must be >= 2")
        if self.individual_size < 1:
            raise ConfigError("individual_size must be >= 1")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigError("mutation_rate must be within [0, 1]")
        # Operator names are validated against the search-layer
        # registries — the single source of truth shared with the
        # config lint and the strategies themselves.  Imported lazily:
        # repro.search imports core submodules, so a module-level
        # import here would be circular.
        from ..search.operators import (CROSSOVER_OPERATORS,
                                        SELECTION_OPERATORS)
        if self.crossover_operator not in CROSSOVER_OPERATORS:
            raise ConfigError(
                CROSSOVER_OPERATORS.unknown_message(self.crossover_operator),
                diagnostic_code="SC209")
        if self.parent_selection_method not in SELECTION_OPERATORS:
            raise ConfigError(SELECTION_OPERATORS.unknown_message(
                self.parent_selection_method), diagnostic_code="SC209")
        if self.tournament_size < 1:
            raise ConfigError("tournament_size must be >= 1")
        if self.generations < 1:
            raise ConfigError("generations must be >= 1")
        if not 0.0 <= self.operand_mutation_share <= 1.0:
            raise ConfigError("operand_mutation_share must be within [0, 1]")

    def expected_mutations_per_individual(self) -> float:
        """The paper recommends tuning the rate so ~1–2 instructions
        mutate per individual (2% at 50 instructions, 8% at ~15)."""
        return self.mutation_rate * self.individual_size


@dataclass
class EvaluationParameters:
    """How a generation is evaluated (:mod:`repro.evaluation`).

    ``workers`` sizes the executor: 1 keeps the in-process
    :class:`~repro.evaluation.backends.SerialBackend`; N > 1 makes N
    worker processes available (the paper measures on multiple boards
    the same way); 0 means *auto* — size from the machine.  ``backend``
    picks the execution engine: ``auto`` (default — route each
    generation to the cheapest engine), ``serial``, ``batched`` (the
    population-vectorized path), or ``pool``.  ``cache`` enables the
    content-addressed :class:`~repro.evaluation.cache.EvaluationCache`.
    Whatever the combination, the run's populations and history are
    bit-identical — the evaluation layer's determinism contract.
    """

    workers: int = 1
    cache: bool = False
    backend: str = "auto"

    def validate(self) -> None:
        if self.workers < 0:
            raise ConfigError(
                "evaluation workers must be >= 0 (0 = auto)")
        if self.backend not in ("auto", "serial", "batched", "pool"):
            raise ConfigError(
                f"unknown evaluation backend {self.backend!r}; expected "
                "one of auto, serial, batched, pool")


@dataclass
class SearchParameters:
    """Which search strategy proposes populations (:mod:`repro.search`).

    ``strategy`` names a registered :class:`~repro.search.SearchStrategy`
    (``genetic`` — the paper's GA and the default — ``random``,
    ``hill_climb``, ``simulated_annealing``); ``params`` carries the
    strategy's own tunables from the ``<search>`` block's remaining
    attributes (e.g. ``initial_temperature`` for the annealer).  Values
    stay as strings here — the strategy's declared parsers normalise
    them, so validation instantiates the strategy once and lets it
    reject unknown names or bad values with the full choice list.
    """

    strategy: str = "genetic"
    params: Dict[str, str] = field(default_factory=dict)

    def validate(self) -> None:
        # Lazy import: repro.search imports core submodules.
        from ..search import make_strategy
        make_strategy(self.strategy, self.params)


@dataclass
class RunConfig:
    """Everything one GA run needs.

    ``measurement_class`` / ``fitness_class`` are dotted class paths
    resolved by :mod:`repro.core.loader` — the plug-and-play interface
    the paper highlights.  ``measurement_params`` carries the contents
    of the separate measurement XML file (paper III.C).
    """

    ga: GAParameters
    library: InstructionLibrary
    template_text: str
    measurement_class: str = "repro.measurement.power.PowerMeasurement"
    fitness_class: str = "repro.fitness.default_fitness.DefaultFitness"
    measurement_params: Dict[str, str] = field(default_factory=dict)
    results_dir: Optional[Path] = None
    seed_population_file: Optional[Path] = None
    evaluation: EvaluationParameters = field(
        default_factory=EvaluationParameters)
    search: SearchParameters = field(default_factory=SearchParameters)

    def validate(self) -> None:
        self.ga.validate()
        self.evaluation.validate()
        self.search.validate()
        if not self.template_text:
            raise ConfigError("run config has no template source")


# ---------------------------------------------------------------------------
# XML parsing
# ---------------------------------------------------------------------------

_TRUE_STRINGS = {"true", "1", "yes", "on"}
_FALSE_STRINGS = {"false", "0", "no", "off"}


def _parse_bool(raw: str, context: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUE_STRINGS:
        return True
    if lowered in _FALSE_STRINGS:
        return False
    raise ConfigError(f"{context}: cannot interpret {raw!r} as a boolean")


def _attr(element: ET.Element, name: str, context: str) -> str:
    value = element.get(name)
    if value is None:
        raise ConfigError(f"{context}: missing required attribute {name!r}")
    return value


def _parse_operand(element: ET.Element) -> Operand:
    operand_id = _attr(element, "id", "operand")
    otype = _attr(element, "type", f"operand {operand_id!r}")
    if otype == "register":
        values = _attr(element, "values", f"operand {operand_id!r}")
        return RegisterOperand.from_string(operand_id, values)
    if otype == "immediate":
        context = f"operand {operand_id!r}"
        try:
            minimum = int(_attr(element, "min", context))
            maximum = int(_attr(element, "max", context))
            stride = int(element.get("stride", "1"))
        except ValueError as exc:
            raise ConfigError(f"{context}: non-integer range value") from exc
        return ImmediateOperand(operand_id, minimum, maximum, stride)
    if otype == "label":
        values = element.get("values", "1f")
        return LabelOperand(operand_id, values.split())
    raise ConfigError(f"operand {operand_id!r}: unknown type {otype!r}")


def _parse_instruction(element: ET.Element) -> InstructionSpec:
    name = _attr(element, "name", "instruction")
    context = f"instruction {name!r}"
    try:
        declared = int(_attr(element, "num_of_operands", context))
    except ValueError as exc:
        raise ConfigError(f"{context}: num_of_operands not an integer") from exc
    operand_ids: List[str] = []
    for slot in range(1, declared + 1):
        operand_ids.append(_attr(element, f"operand{slot}", context))
    fmt = _attr(element, "format", context)
    itype = _attr(element, "type", context)
    return InstructionSpec(name, operand_ids, fmt, itype)


def parse_config_text(text: str,
                      base_dir: Optional[Path] = None) -> RunConfig:
    """Parse a main-configuration XML document from a string.

    ``base_dir`` resolves relative template / measurement-config /
    seed-population paths (defaults to the current directory).
    """
    base = Path(base_dir) if base_dir is not None else Path(".")
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ConfigError(f"invalid XML: {exc}") from exc
    if root.tag != "gest_config":
        raise ConfigError(
            f"root element must be <gest_config>, found <{root.tag}>")

    ga = _parse_ga(root.find("ga"))

    paths = root.find("paths")
    if paths is None:
        raise ConfigError("missing <paths> element")
    template_path = base / _attr(paths, "template", "paths")
    if not template_path.exists():
        raise ConfigError(f"template file {template_path} does not exist")
    template_text = template_path.read_text()
    results_attr = paths.get("results_dir")
    results_dir = base / results_attr if results_attr else None

    measurement = root.find("measurement")
    measurement_class = "repro.measurement.power.PowerMeasurement"
    measurement_params: Dict[str, str] = {}
    if measurement is not None:
        measurement_class = _attr(measurement, "class", "measurement")
        config_attr = measurement.get("config")
        if config_attr:
            measurement_params = parse_measurement_config(base / config_attr)

    fitness = root.find("fitness")
    fitness_class = "repro.fitness.default_fitness.DefaultFitness"
    if fitness is not None:
        fitness_class = _attr(fitness, "class", "fitness")

    seed_population_file = None
    seed_el = root.find("seed_population")
    if seed_el is not None:
        seed_population_file = base / _attr(seed_el, "file", "seed_population")

    operands_el = root.find("operands")
    operands = ([_parse_operand(el) for el in operands_el.findall("operand")]
                if operands_el is not None else [])
    instructions_el = root.find("instructions")
    if instructions_el is None:
        raise ConfigError("missing <instructions> element")
    instructions = [_parse_instruction(el)
                    for el in instructions_el.findall("instruction")]

    library = InstructionLibrary(operands, instructions)
    config = RunConfig(
        ga=ga,
        library=library,
        template_text=template_text,
        measurement_class=measurement_class,
        fitness_class=fitness_class,
        measurement_params=measurement_params,
        results_dir=results_dir,
        seed_population_file=seed_population_file,
        evaluation=_parse_evaluation(root.find("evaluation")),
        search=_parse_search(root.find("search")),
    )
    config.validate()
    return config


def _parse_search(element: Optional[ET.Element]) -> SearchParameters:
    """``<search strategy="..." param="value" .../>`` — every attribute
    other than ``strategy`` is passed to the strategy as a parameter."""
    search = SearchParameters()
    if element is None:
        return search
    attrs = dict(element.attrib)
    if "strategy" in attrs:
        search.strategy = attrs.pop("strategy")
    search.params = attrs
    search.validate()
    return search


def _parse_evaluation(
        element: Optional[ET.Element]) -> EvaluationParameters:
    evaluation = EvaluationParameters()
    if element is None:
        return evaluation
    context = "<evaluation>"
    try:
        if element.get("workers") is not None:
            evaluation.workers = int(element.get("workers"))
    except ValueError as exc:
        raise ConfigError(f"{context}: non-numeric workers value") from exc
    if element.get("cache") is not None:
        evaluation.cache = _parse_bool(element.get("cache"), context)
    if element.get("backend") is not None:
        evaluation.backend = element.get("backend").strip().lower()
    evaluation.validate()
    return evaluation


def _parse_ga(element: Optional[ET.Element]) -> GAParameters:
    ga = GAParameters()
    if element is None:
        return ga
    context = "<ga>"
    try:
        if element.get("population_size") is not None:
            ga.population_size = int(element.get("population_size"))
        if element.get("individual_size") is not None:
            ga.individual_size = int(element.get("individual_size"))
        if element.get("mutation_rate") is not None:
            ga.mutation_rate = float(element.get("mutation_rate"))
        if element.get("tournament_size") is not None:
            ga.tournament_size = int(element.get("tournament_size"))
        if element.get("generations") is not None:
            ga.generations = int(element.get("generations"))
        if element.get("operand_mutation_share") is not None:
            ga.operand_mutation_share = float(
                element.get("operand_mutation_share"))
        if element.get("seed") is not None:
            ga.seed = int(element.get("seed"))
    except ValueError as exc:
        raise ConfigError(f"{context}: non-numeric attribute value") from exc
    if element.get("crossover_operator") is not None:
        ga.crossover_operator = element.get("crossover_operator")
    if element.get("parent_selection_method") is not None:
        ga.parent_selection_method = element.get("parent_selection_method")
    if element.get("elitism") is not None:
        ga.elitism = _parse_bool(element.get("elitism"), context)
    ga.validate()
    return ga


def parse_config_file(path: Union[str, Path]) -> RunConfig:
    """Parse a main-configuration XML file; relative paths inside the
    document resolve against the file's own directory."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"configuration file {path} does not exist")
    return parse_config_text(path.read_text(), base_dir=path.parent)


def parse_measurement_config(path: Union[str, Path]) -> Dict[str, str]:
    """Parse the separate measurement XML file (paper III.C).

    Format: ``<measurement_config><param name="cores" value="8"/>...``
    Returned as a flat string→string mapping; the measurement class's
    ``init`` interprets the values.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"measurement config {path} does not exist")
    try:
        root = ET.fromstring(path.read_text())
    except ET.ParseError as exc:
        raise ConfigError(f"invalid measurement XML: {exc}") from exc
    if root.tag != "measurement_config":
        raise ConfigError(
            f"root element must be <measurement_config>, found <{root.tag}>")
    params: Dict[str, str] = {}
    for param in root.findall("param"):
        name = _attr(param, "name", "measurement param")
        params[name] = _attr(param, "value", f"measurement param {name!r}")
    return params


# ---------------------------------------------------------------------------
# XML writing (round-trip support for record keeping, paper III.D)
# ---------------------------------------------------------------------------

def config_to_xml(config: RunConfig, template_filename: str = "template.s",
                  results_dir: str = "results") -> str:
    """Serialise a RunConfig back to the XML document format.

    Used by the output recorder to keep an exact copy of the
    configuration with each run's results, and by tests to check
    round-tripping.  The template itself is referenced by file name (the
    recorder writes it alongside).
    """
    root = ET.Element("gest_config")
    ga = config.ga
    ET.SubElement(root, "ga", {
        "population_size": str(ga.population_size),
        "individual_size": str(ga.individual_size),
        "mutation_rate": repr(ga.mutation_rate),
        "crossover_operator": ga.crossover_operator,
        "elitism": "true" if ga.elitism else "false",
        "parent_selection_method": ga.parent_selection_method,
        "tournament_size": str(ga.tournament_size),
        "generations": str(ga.generations),
        "operand_mutation_share": repr(ga.operand_mutation_share),
        **({"seed": str(ga.seed)} if ga.seed is not None else {}),
    })
    ET.SubElement(root, "paths", {
        "results_dir": results_dir,
        "template": template_filename,
    })
    ET.SubElement(root, "measurement", {"class": config.measurement_class})
    ET.SubElement(root, "fitness", {"class": config.fitness_class})
    ET.SubElement(root, "evaluation", {
        "workers": str(config.evaluation.workers),
        "cache": "true" if config.evaluation.cache else "false",
        "backend": config.evaluation.backend,
    })
    ET.SubElement(root, "search", {
        "strategy": config.search.strategy,
        **{key: str(value)
           for key, value in config.search.params.items()},
    })

    operands_el = ET.SubElement(root, "operands")
    for operand in config.library.operands.values():
        attrs = {"id": operand.id, "type": operand.kind}
        if isinstance(operand, RegisterOperand):
            attrs["values"] = " ".join(operand.choices())
        elif isinstance(operand, ImmediateOperand):
            attrs.update(min=str(operand.minimum), max=str(operand.maximum),
                         stride=str(operand.stride))
        elif isinstance(operand, LabelOperand):
            attrs["values"] = " ".join(operand.choices())
        ET.SubElement(operands_el, "operand", attrs)

    instructions_el = ET.SubElement(root, "instructions")
    for spec in config.library.instructions.values():
        attrs = {
            "name": spec.name,
            "num_of_operands": str(spec.num_operands),
            "format": spec.fmt,
            "type": spec.itype,
        }
        for slot, oid in enumerate(spec.operand_ids, start=1):
            attrs[f"operand{slot}"] = oid
        ET.SubElement(instructions_el, "instruction", attrs)

    return ET.tostring(root, encoding="unicode")
