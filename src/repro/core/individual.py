"""GA individuals (paper Section III.A).

An **individual** is a sequence of concrete assembly instructions — the
body of the stress-test loop.  Individuals carry their measurement
results, fitness value and parent ids so that the output recorder can
persist the provenance the paper describes (population binaries contain
"the source code, the id, the parent ids and the measurement values of
each individual").
"""

from __future__ import annotations

from collections import Counter
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from .instruction import ConcreteInstruction, InstructionLibrary

__all__ = ["Individual", "random_individual"]


class Individual:
    """A candidate stress-test: an ordered list of concrete instructions.

    The instruction list is immutable after construction; GA operators
    build *new* individuals rather than mutating existing ones, so a
    recorded population can never be corrupted retroactively.
    Measurement results and fitness are attached post-construction by
    the engine (they are observations, not genome).
    """

    __slots__ = ("instructions", "uid", "parent_ids", "measurements",
                 "fitness", "generation", "compile_failed", "screen_failed")

    def __init__(self, instructions: Sequence[ConcreteInstruction],
                 uid: int = -1,
                 parent_ids: Tuple[int, ...] = ()) -> None:
        self.instructions: Tuple[ConcreteInstruction, ...] = tuple(instructions)
        self.uid = uid
        self.parent_ids = tuple(parent_ids)
        self.measurements: List[float] = []
        self.fitness: Optional[float] = None
        self.generation: int = -1
        self.compile_failed: bool = False
        self.screen_failed: bool = False

    # -- genome ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.instructions)

    def render_body(self) -> str:
        """The loop-body assembly text, one instruction per line."""
        return "\n".join(instr.render() for instr in self.instructions)

    def opcode_sequence(self) -> Tuple[str, ...]:
        return tuple(instr.name for instr in self.instructions)

    def unique_instruction_count(self) -> int:
        """Number of distinct opcodes — the ``U_I`` term of the paper's
        Equation 1 simplicity score."""
        return len(set(self.opcode_sequence()))

    def instruction_mix(self) -> Dict[str, int]:
        """Counts per instruction-type tag (``itype``)."""
        return dict(Counter(instr.itype for instr in self.instructions))

    def genome_key(self) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """A hashable key identifying the exact genome (opcodes and
        operand values), used for deduplication in analyses."""
        return tuple((i.name, i.values) for i in self.instructions)

    # -- lineage / bookkeeping --------------------------------------------

    def clone(self, uid: int = -1,
              parent_ids: Tuple[int, ...] = ()) -> "Individual":
        """A fresh unevaluated individual with the same genome."""
        return Individual(self.instructions, uid=uid, parent_ids=parent_ids)

    @property
    def evaluated(self) -> bool:
        return self.fitness is not None

    def record_evaluation(self, measurements: Sequence[float],
                          fitness: float,
                          compile_failed: bool = False,
                          screen_failed: bool = False) -> None:
        self.measurements = list(measurements)
        self.fitness = float(fitness)
        self.compile_failed = compile_failed
        self.screen_failed = screen_failed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fit = "unmeasured" if self.fitness is None else f"{self.fitness:.4f}"
        return (f"Individual(uid={self.uid}, len={len(self)}, "
                f"fitness={fit})")


def random_individual(library: InstructionLibrary, size: int,
                      rng: Random, uid: int = -1) -> Individual:
    """A uniformly random individual of ``size`` instructions.

    This is how the random seed population of the GA is built when no
    previous-run population is supplied.
    """
    instructions = [library.random_instruction(rng) for _ in range(size)]
    return Individual(instructions, uid=uid)
