"""Dynamic class loading (paper Section III.C).

GeST loads the user's measurement and fitness classes by name from the
configuration file — "the user defined class is dynamically loaded by
only specifying the class name in the input configuration file.  No
other change in the source code is required."

:func:`load_class` resolves a dotted path like
``repro.measurement.power.PowerMeasurement``; :func:`instantiate`
additionally checks the loaded class against an expected base class so
a typo'd name fails with a clear error instead of an attribute error
deep inside the GA loop.
"""

from __future__ import annotations

import importlib
from typing import Any, Optional, Type

from .errors import LoaderError

__all__ = ["load_class", "instantiate"]


def load_class(dotted_path: str) -> Type:
    """Import ``pkg.module.ClassName`` and return the class object."""
    if "." not in dotted_path:
        raise LoaderError(
            f"{dotted_path!r} is not a dotted class path "
            "(expected e.g. 'repro.fitness.default_fitness.DefaultFitness')")
    module_path, _, class_name = dotted_path.rpartition(".")
    try:
        module = importlib.import_module(module_path)
    except ImportError as exc:
        raise LoaderError(
            f"cannot import module {module_path!r}: {exc}") from exc
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise LoaderError(
            f"module {module_path!r} has no class {class_name!r}") from None
    if not isinstance(cls, type):
        raise LoaderError(f"{dotted_path!r} is not a class")
    return cls


def instantiate(dotted_path: str, base: Optional[Type] = None,
                *args: Any, **kwargs: Any) -> Any:
    """Load ``dotted_path``, verify it subclasses ``base`` and call it."""
    cls = load_class(dotted_path)
    if base is not None and not issubclass(cls, base):
        raise LoaderError(
            f"{dotted_path!r} does not inherit from {base.__name__}")
    return cls(*args, **kwargs)
