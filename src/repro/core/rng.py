"""Deterministic random-stream management.

The original GeST draws from Python's global ``random`` module, which
makes runs hard to reproduce exactly.  This reproduction threads seeded
:class:`random.Random` instances through every stochastic component (GA
operators, OS measurement noise) so a run is a pure function of its
configuration and seed.

``spawn`` derives independent child streams from a parent, so the GA
engine and the simulated machine never perturb one another's sequences
even when evaluation order changes.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["make_rng", "spawn"]

# Large odd multiplier used to decorrelate child streams; any fixed odd
# constant works because Random re-hashes the seed internally.
_SPAWN_MULTIPLIER = 0x9E3779B97F4A7C15


def make_rng(seed: Optional[int] = None) -> random.Random:
    """Return a new :class:`random.Random`.

    ``None`` yields an OS-entropy stream (useful interactively); tests
    and experiments always pass an explicit integer seed.
    """
    return random.Random(seed)


def spawn(parent: random.Random, key: int) -> random.Random:
    """Derive an independent child stream from ``parent``.

    The child's seed mixes fresh bits drawn from the parent with a
    caller-supplied ``key`` so that spawning in a different order (or
    spawning additional streams) never silently aliases two streams.
    """
    base = parent.getrandbits(64)
    mixed = (base ^ (key * _SPAWN_MULTIPLIER)) & (2**64 - 1)
    return random.Random(mixed)
