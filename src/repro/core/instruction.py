"""Instruction definitions and concrete instructions (paper Figure 4).

An :class:`InstructionSpec` is the user-facing definition: a unique
name, the ids of the operand pools each slot draws from, a ``format``
string telling the framework how to print the instruction, and a free
``itype`` tag used for instruction-mix breakdowns (int / float / SIMD /
mem / branch in the paper's tables).

A :class:`ConcreteInstruction` is one realised form — a spec plus one
chosen value per slot.  The GA's search space is the set of all
concrete instructions times their ordering; mutation resamples either a
whole instruction (new spec, new values) or a single operand slot.

A spec's format string contains the placeholders ``op1`` ... ``opN``.
Substitution replaces higher-numbered placeholders first so ``op12``
is never corrupted by the ``op1`` replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Mapping, Sequence, Tuple

from .errors import ConfigError
from .operand import Operand

__all__ = ["InstructionSpec", "ConcreteInstruction", "InstructionLibrary"]

#: Canonical instruction-type tags used by the paper's breakdown tables.
KNOWN_TYPES = ("int_short", "int_long", "float", "simd", "mem", "branch", "nop")


class InstructionSpec:
    """A user-supplied instruction definition.

    Parameters mirror the XML attributes of Figure 4:

    ``name``
        Unique identifier (``LDR``); uniqueness is enforced by
        :class:`InstructionLibrary`.
    ``operand_ids``
        Ids of the operand definitions for slots 1..N, in slot order.
    ``fmt``
        Print format with ``op1``..``opN`` placeholders, e.g.
        ``"LDR op1, [op2, #op3]"``.
    ``itype``
        Classification tag (``mem``, ``float``, ...).  Any string is
        accepted; the analysis module groups the paper's canonical tags.
    """

    __slots__ = ("name", "operand_ids", "fmt", "itype")

    def __init__(self, name: str, operand_ids: Sequence[str], fmt: str,
                 itype: str) -> None:
        if not name:
            raise ConfigError("instruction name must be non-empty")
        if not fmt:
            raise ConfigError(f"instruction {name!r}: format must be non-empty")
        self.name = name
        self.operand_ids = tuple(operand_ids)
        self.fmt = fmt
        self.itype = itype
        for slot in range(1, len(self.operand_ids) + 1):
            if f"op{slot}" not in fmt:
                raise ConfigError(
                    f"instruction {name!r}: format {fmt!r} does not mention "
                    f"placeholder op{slot}")

    @property
    def num_operands(self) -> int:
        return len(self.operand_ids)

    def render(self, values: Sequence[str]) -> str:
        """Substitute ``values`` into the format string.

        Placeholders are replaced from the highest slot number down so
        that e.g. ``op10`` is handled before ``op1``.
        """
        if len(values) != self.num_operands:
            raise ConfigError(
                f"instruction {self.name!r} expects {self.num_operands} "
                f"operand values, got {len(values)}")
        text = self.fmt
        for slot in range(self.num_operands, 0, -1):
            text = text.replace(f"op{slot}", values[slot - 1])
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InstructionSpec(name={self.name!r}, "
                f"operands={self.operand_ids!r}, type={self.itype!r})")


@dataclass(frozen=True)
class ConcreteInstruction:
    """One realised instruction: a spec plus chosen operand values.

    Immutable and hashable so populations can be de-duplicated and
    instruction provenance compared across generations.
    """

    spec: InstructionSpec
    values: Tuple[str, ...]

    def render(self) -> str:
        """The assembly text for this instruction."""
        return self.spec.render(self.values)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def itype(self) -> str:
        return self.spec.itype

    def with_value(self, slot: int, value: str) -> "ConcreteInstruction":
        """A copy with operand ``slot`` (0-based) replaced by ``value``."""
        if not 0 <= slot < len(self.values):
            raise ConfigError(
                f"instruction {self.name!r} has no operand slot {slot}")
        new_values = list(self.values)
        new_values[slot] = value
        return ConcreteInstruction(self.spec, tuple(new_values))

    def __str__(self) -> str:
        return self.render()


class InstructionLibrary:
    """The full set of instruction and operand definitions for a search.

    Validates, at construction time, that every operand id referenced by
    an instruction definition exists — the paper states the framework
    terminates if an instruction references an undefined operand id,
    which here surfaces as :class:`~repro.core.errors.ConfigError`.
    """

    def __init__(self, operands: Sequence[Operand],
                 instructions: Sequence[InstructionSpec]) -> None:
        self._operands: Dict[str, Operand] = {}
        for operand in operands:
            if operand.id in self._operands:
                raise ConfigError(f"duplicate operand id {operand.id!r}")
            self._operands[operand.id] = operand

        self._instructions: Dict[str, InstructionSpec] = {}
        for spec in instructions:
            if spec.name in self._instructions:
                raise ConfigError(f"duplicate instruction name {spec.name!r}")
            for oid in spec.operand_ids:
                if oid not in self._operands:
                    raise ConfigError(
                        f"instruction {spec.name!r} references undefined "
                        f"operand id {oid!r}")
            self._instructions[spec.name] = spec

        if not self._instructions:
            raise ConfigError("instruction library is empty")

        self._names = tuple(self._instructions)

    # -- lookup ----------------------------------------------------------

    @property
    def operands(self) -> Mapping[str, Operand]:
        return dict(self._operands)

    @property
    def instructions(self) -> Mapping[str, InstructionSpec]:
        return dict(self._instructions)

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    def spec(self, name: str) -> InstructionSpec:
        try:
            return self._instructions[name]
        except KeyError:
            raise ConfigError(f"unknown instruction {name!r}") from None

    def operand(self, operand_id: str) -> Operand:
        try:
            return self._operands[operand_id]
        except KeyError:
            raise ConfigError(f"unknown operand id {operand_id!r}") from None

    # -- sampling --------------------------------------------------------

    def variant_count(self, name: str) -> int:
        """Number of possible forms of instruction ``name`` (the paper's
        "99 possible ways the GA can use the LDR instruction")."""
        spec = self.spec(name)
        total = 1
        for oid in spec.operand_ids:
            total *= self._operands[oid].cardinality()
        return total

    def sample_values(self, spec: InstructionSpec,
                      rng: Random) -> Tuple[str, ...]:
        """Random operand values for ``spec``, one per slot."""
        return tuple(self._operands[oid].sample(rng)
                     for oid in spec.operand_ids)

    def random_instruction(self, rng: Random) -> ConcreteInstruction:
        """A uniformly random concrete instruction (random spec, then
        random values) — the mutation/seed primitive of the GA."""
        spec = self._instructions[self._names[rng.randrange(len(self._names))]]
        return ConcreteInstruction(spec, self.sample_values(spec, rng))

    def random_operand_value(self, instr: ConcreteInstruction, slot: int,
                             rng: Random) -> str:
        """A random replacement value for one slot of ``instr``."""
        spec = instr.spec
        if not 0 <= slot < spec.num_operands:
            raise ConfigError(
                f"instruction {spec.name!r} has no operand slot {slot}")
        return self._operands[spec.operand_ids[slot]].sample(rng)

    def __len__(self) -> int:
        return len(self._instructions)

    def __contains__(self, name: object) -> bool:
        return name in self._instructions
