"""Run outputs (paper Section III.D).

The framework's output is the source code of every individual, one
file each, named ``<generation>_<id>_<m1>_<m2>....txt`` where the
``m``s are the individual's measurements formatted to two decimals —
the paper's example is ``1_10_1.30_1.33.txt`` for individual 10 of
population 1 with average/peak power 1.30/1.33 W.  Because the first
measurement is by convention the fitness, sorting file names retrieves
the fittest individual with basic UNIX commands.

Each generation is additionally pickled as a population binary
(:mod:`repro.core.population`), and the run directory keeps
record-keeping copies of the configuration and template.

:class:`FileRecorder` is this layout expressed as one
:class:`~repro.core.events.RunRecorder` subscriber: the engine emits
typed events, and this recorder turns them into exactly the directory
tree the pre-event-stream engine wrote.  The low-level ``record_*``
methods remain public — post-processing tools and tests drive them
directly — and the historical name :class:`OutputRecorder` is an alias
for :class:`FileRecorder`.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Iterator, List, Optional, Union

from .config import RunConfig, config_to_xml
from .events import (GenerationCompleted, IndividualEvaluated, RunRecorder,
                     RunStarted)
from .individual import Individual
from .population import Population

__all__ = ["FileRecorder", "OutputRecorder", "individual_filename",
           "read_stats"]


def individual_filename(individual: Individual) -> str:
    """The paper's naming convention for an individual's source file."""
    parts = [str(individual.generation), str(individual.uid)]
    parts.extend(f"{m:.2f}" for m in individual.measurements)
    return "_".join(parts) + ".txt"


def read_stats(path: Union[str, Path]) -> Iterator[dict]:
    """Yield the parseable records of a ``stats.jsonl`` file, in order.

    Tolerant by design: a half-written trailing line (killed run), a
    corrupt line, or records carrying unknown keys from a newer schema
    are all survivable — unparseable lines are skipped with a warning
    instead of aborting post-processing, and records pass through with
    whatever keys they have.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    f"{path}:{number}: skipping unparseable stats record "
                    "(half-written line from an interrupted run?)",
                    RuntimeWarning, stacklevel=2)
                continue
            if isinstance(record, dict):
                yield record


class FileRecorder(RunRecorder):
    """Persists a GA run to a results directory.

    Layout::

        <results_dir>/
          config.xml          copy of the run configuration
          template.s          copy of the template source
          stats.jsonl         one record per generation
          individuals/        one source file per evaluated individual
          populations/        one binary per generation

    As an event subscriber it maps ``run_started`` → provenance,
    ``individual_evaluated`` → source file, ``generation_completed`` →
    population binary + stats line, which is byte-for-byte the order
    and content the pre-event engine produced.
    """

    def __init__(self, results_dir: Union[str, Path]) -> None:
        self.results_dir = Path(results_dir)
        self.individuals_dir = self.results_dir / "individuals"
        self.populations_dir = self.results_dir / "populations"
        for directory in (self.results_dir, self.individuals_dir,
                          self.populations_dir):
            directory.mkdir(parents=True, exist_ok=True)

    # -- event hooks --------------------------------------------------------

    def on_run_started(self, event: RunStarted) -> None:
        self.record_provenance(event.config)

    def on_individual_evaluated(self, event: IndividualEvaluated) -> None:
        self.record_individual(event.individual, event.source)

    def on_generation_completed(self, event: GenerationCompleted) -> None:
        self.record_population(event.population)
        self.record_stats(event.stats)

    # -- low-level writers --------------------------------------------------

    def record_provenance(self, config: RunConfig) -> None:
        """Save the configuration and template used for the run."""
        (self.results_dir / "template.s").write_text(config.template_text)
        (self.results_dir / "config.xml").write_text(
            config_to_xml(config, template_filename="template.s",
                          results_dir=str(self.results_dir)))

    def record_individual(self, individual: Individual,
                          source_text: str) -> Path:
        """Write one individual's generated source file."""
        path = self.individuals_dir / individual_filename(individual)
        path.write_text(source_text)
        return path

    def record_stats(self, stats: dict) -> Path:
        """Append one generation's statistics to ``stats.jsonl``.

        The whole record — one JSON object plus its newline — goes down
        in a single ``os.write`` on an ``O_APPEND`` descriptor, so a
        run killed mid-append never leaves a *half*-written line for
        the next reader to choke on: either the line is complete or it
        is absent (POSIX appends of one ``write`` call do not
        interleave).
        """
        path = self.results_dir / "stats.jsonl"
        line = (json.dumps(stats, sort_keys=True) + "\n").encode("utf-8")
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        return path

    def read_stats(self) -> List[dict]:
        """The recorded stats records (see module-level ``read_stats``)."""
        path = self.results_dir / "stats.jsonl"
        if not path.exists():
            return []
        return list(read_stats(path))

    def record_population(self, population: Population) -> Path:
        """Pickle one generation."""
        return population.save(
            self.populations_dir / f"population_{population.number}.bin")

    def population_files(self) -> List[Path]:
        """All saved generation binaries, in generation order."""
        files = list(self.populations_dir.glob("population_*.bin"))
        return sorted(files, key=lambda p: int(p.stem.split("_")[1]))

    def fittest_individual_file(self) -> Optional[Path]:
        """Quickly locate the fittest individual's source file using the
        naming convention (highest first measurement wins), as the
        paper suggests doing with UNIX tools."""
        best_path: Optional[Path] = None
        best_score = float("-inf")
        for path in self.individuals_dir.glob("*.txt"):
            fields = path.stem.split("_")
            if len(fields) < 3:
                continue
            try:
                score = float(fields[2])
            except ValueError:
                continue
            if score > best_score:
                best_score = score
                best_path = path
        return best_path


#: Historical name — the recorder predates the event stream.
OutputRecorder = FileRecorder
