"""Run outputs (paper Section III.D).

The framework's output is the source code of every individual, one
file each, named ``<generation>_<id>_<m1>_<m2>....txt`` where the
``m``s are the individual's measurements formatted to two decimals —
the paper's example is ``1_10_1.30_1.33.txt`` for individual 10 of
population 1 with average/peak power 1.30/1.33 W.  Because the first
measurement is by convention the fitness, sorting file names retrieves
the fittest individual with basic UNIX commands.

Each generation is additionally pickled as a population binary
(:mod:`repro.core.population`), and the run directory keeps
record-keeping copies of the configuration and template.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Union

from .config import RunConfig, config_to_xml
from .individual import Individual
from .population import Population

__all__ = ["OutputRecorder", "individual_filename"]


def individual_filename(individual: Individual) -> str:
    """The paper's naming convention for an individual's source file."""
    parts = [str(individual.generation), str(individual.uid)]
    parts.extend(f"{m:.2f}" for m in individual.measurements)
    return "_".join(parts) + ".txt"


class OutputRecorder:
    """Persists a GA run to a results directory.

    Layout::

        <results_dir>/
          config.xml          copy of the run configuration
          template.s          copy of the template source
          individuals/        one source file per evaluated individual
          populations/        one binary per generation
    """

    def __init__(self, results_dir: Union[str, Path]) -> None:
        self.results_dir = Path(results_dir)
        self.individuals_dir = self.results_dir / "individuals"
        self.populations_dir = self.results_dir / "populations"
        for directory in (self.results_dir, self.individuals_dir,
                          self.populations_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def record_provenance(self, config: RunConfig) -> None:
        """Save the configuration and template used for the run."""
        (self.results_dir / "template.s").write_text(config.template_text)
        (self.results_dir / "config.xml").write_text(
            config_to_xml(config, template_filename="template.s",
                          results_dir=str(self.results_dir)))

    def record_individual(self, individual: Individual,
                          source_text: str) -> Path:
        """Write one individual's generated source file."""
        path = self.individuals_dir / individual_filename(individual)
        path.write_text(source_text)
        return path

    def record_stats(self, stats: dict) -> Path:
        """Append one generation's evaluation statistics to
        ``stats.jsonl`` — one JSON object per line, in generation order,
        covering fitness summary, failure counts, cache hits and the
        per-stage evaluation wall-time.
        """
        path = self.results_dir / "stats.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(stats, sort_keys=True) + "\n")
        return path

    def record_population(self, population: Population) -> Path:
        """Pickle one generation."""
        return population.save(
            self.populations_dir / f"population_{population.number}.bin")

    def population_files(self) -> List[Path]:
        """All saved generation binaries, in generation order."""
        files = list(self.populations_dir.glob("population_*.bin"))
        return sorted(files, key=lambda p: int(p.stem.split("_")[1]))

    def fittest_individual_file(self) -> Optional[Path]:
        """Quickly locate the fittest individual's source file using the
        naming convention (highest first measurement wins), as the
        paper suggests doing with UNIX tools."""
        best_path: Optional[Path] = None
        best_score = float("-inf")
        for path in self.individuals_dir.glob("*.txt"):
            fields = path.stem.split("_")
            if len(fields) < 3:
                continue
            try:
                score = float(fields[2])
            except ValueError:
                continue
            if score > best_score:
                best_score = score
                best_path = path
        return best_path
