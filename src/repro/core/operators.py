"""Genetic operators (paper Section III.A, Figure 3).

The paper's defaults (Table I) are: tournament selection with
tournament size 5, one-point crossover, whole-instruction or
single-operand mutation at a 2–8% per-instruction rate, and elitism
(best individual copied unchanged into the next generation).

Uniform crossover is also implemented because the paper explicitly
compares against it ("one-point crossover ... does a better job in
preserving the instruction-order of strong individuals compared to
uniform-crossover"); the ablation benchmark exercises both.
"""

from __future__ import annotations

import warnings
from random import Random
from typing import List, Sequence, Set, Tuple

from .errors import ConfigError
from .individual import Individual
from .instruction import InstructionLibrary

__all__ = [
    "tournament_select",
    "one_point_crossover",
    "uniform_crossover",
    "mutate",
    "CROSSOVER_OPERATORS",
]


def _fitness(individual: Individual) -> float:
    if individual.fitness is None:
        raise ConfigError(
            f"individual uid={individual.uid} has not been evaluated; "
            "selection requires fitness values")
    return individual.fitness


#: (tournament_size, population_size) pairs already warned about, so a
#: misconfigured run logs the clamp once, not once per selection.
_CLAMP_WARNED: Set[Tuple[int, int]] = set()


def tournament_select(population: Sequence[Individual], rng: Random,
                      tournament_size: int = 5) -> Individual:
    """Pick ``tournament_size`` individuals at random (with replacement,
    matching the paper's "randomly pick five individuals") and return
    the fittest of them.

    A tournament larger than the population adds no selection pressure
    — the extra draws just re-sample the same individuals — so it is
    clamped to the population size, with a one-time warning naming both
    values (the clamp also keeps the RNG draw count meaningful).
    """
    if not population:
        raise ConfigError("cannot select from an empty population")
    if tournament_size < 1:
        raise ConfigError("tournament size must be >= 1")
    if tournament_size > len(population):
        key = (tournament_size, len(population))
        if key not in _CLAMP_WARNED:
            _CLAMP_WARNED.add(key)
            warnings.warn(
                f"tournament_size {tournament_size} exceeds the "
                f"population size {len(population)}; clamping the "
                f"tournament to {len(population)} draws",
                RuntimeWarning, stacklevel=2)
        tournament_size = len(population)
    best = population[rng.randrange(len(population))]
    for _ in range(tournament_size - 1):
        contender = population[rng.randrange(len(population))]
        if _fitness(contender) > _fitness(best):
            best = contender
    return best


def one_point_crossover(parent1: Individual, parent2: Individual,
                        rng: Random) -> Tuple[List, List]:
    """Single cut point; children swap halves (paper Figure 3).

    The cut index is drawn from ``1..len-1`` so both children always
    inherit from both parents.  Parents must be the same length — the
    GA uses a fixed individual size (Table I).
    """
    _check_lengths(parent1, parent2)
    n = len(parent1)
    if n < 2:
        return list(parent1.instructions), list(parent2.instructions)
    cut = rng.randrange(1, n)
    child1 = list(parent1.instructions[:cut]) + list(parent2.instructions[cut:])
    child2 = list(parent2.instructions[:cut]) + list(parent1.instructions[cut:])
    return child1, child2


def uniform_crossover(parent1: Individual, parent2: Individual,
                      rng: Random) -> Tuple[List, List]:
    """Each instruction slot independently swaps between the parents
    with probability 0.5 — destroys instruction order, kept for the
    crossover ablation."""
    _check_lengths(parent1, parent2)
    child1, child2 = [], []
    for a, b in zip(parent1.instructions, parent2.instructions):
        if rng.random() < 0.5:
            a, b = b, a
        child1.append(a)
        child2.append(b)
    return child1, child2


def _check_lengths(parent1: Individual, parent2: Individual) -> None:
    if len(parent1) != len(parent2):
        raise ConfigError(
            f"crossover requires equal-length parents "
            f"({len(parent1)} vs {len(parent2)})")


CROSSOVER_OPERATORS = {
    "one_point": one_point_crossover,
    "uniform": uniform_crossover,
}


def mutate(instructions: List, library: InstructionLibrary, rng: Random,
           mutation_rate: float,
           operand_mutation_share: float = 0.5) -> List:
    """Apply per-instruction mutation and return a new list.

    Each instruction independently mutates with probability
    ``mutation_rate``.  A mutation is either (paper Figure 3):

    * a **whole-instruction** mutation — the slot is replaced by a
      uniformly random new concrete instruction (like the STR→LSL
      example, with freshly random operands); or
    * an **operand** mutation — one operand slot is resampled from its
      pool (like the SUB's r2→r5 example).

    ``operand_mutation_share`` is the probability that a triggered
    mutation is of the operand kind; operand-less instructions (NOP,
    implicit-target branches) always take the whole-instruction path.
    """
    if not 0.0 <= mutation_rate <= 1.0:
        raise ConfigError(f"mutation rate {mutation_rate} outside [0, 1]")
    if not 0.0 <= operand_mutation_share <= 1.0:
        raise ConfigError(
            f"operand mutation share {operand_mutation_share} outside [0, 1]")

    mutated = []
    for instr in instructions:
        if rng.random() >= mutation_rate:
            mutated.append(instr)
            continue
        num_ops = instr.spec.num_operands
        if num_ops > 0 and rng.random() < operand_mutation_share:
            slot = rng.randrange(num_ops)
            value = library.random_operand_value(instr, slot, rng)
            mutated.append(instr.with_value(slot, value))
        else:
            mutated.append(library.random_instruction(rng))
    return mutated
