"""Measurement procedures (paper Section III.C)."""

from .base import Measurement
from .cache_misses import CacheMissMeasurement
from .ipc import IPCMeasurement
from .oscilloscope import OscilloscopeMeasurement
from .power import PowerMeasurement
from .temperature import TemperatureMeasurement

__all__ = [
    "CacheMissMeasurement",
    "Measurement",
    "IPCMeasurement",
    "OscilloscopeMeasurement",
    "PowerMeasurement",
    "TemperatureMeasurement",
]
