"""Power measurement — the ARM energy probe stand-in (paper Section V).

"The measurement function for this optimization executes each GA
generated binary for few seconds and takes multiple power readings
during the binary execution."  Returned measurements:

``[average_power_w, peak_power_w]``

so the default fitness maximises average power and the output file
names carry both values (the paper's ``1_10_1.30_1.33.txt`` example).
"""

from __future__ import annotations

from typing import List

from ..core.individual import Individual
from ..cpu.machine import RunResult
from .base import Measurement

__all__ = ["PowerMeasurement"]


class PowerMeasurement(Measurement):
    """Average and peak power over multiple samples."""

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        return self.measure_from_result(
            self.execute_on_target(source_text), individual)

    def measure_from_result(self, result: RunResult,
                            individual: Individual) -> List[float]:
        samples = result.power_samples_w
        average = sum(samples) / len(samples)
        return [average, max(samples)]
