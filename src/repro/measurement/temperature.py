"""Chip-temperature measurement — the i2c sensor stand-in (paper §V).

The X-Gene2 power virus is generated "by optimizing towards maximum
temperature" read over the i2c interface.  Returned measurements:

``[temperature_c, average_power_w, ipc]``

Temperature first (the fitness), with power and IPC recorded for the
Table IV style post-analysis.
"""

from __future__ import annotations

from typing import List

from ..core.individual import Individual
from ..cpu.machine import RunResult
from .base import Measurement

__all__ = ["TemperatureMeasurement"]


class TemperatureMeasurement(Measurement):
    """Quantised chip temperature after the run duration."""

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        return self.measure_from_result(
            self.execute_on_target(source_text), individual)

    def measure_from_result(self, result: RunResult,
                            individual: Individual) -> List[float]:
        return [result.temperature_c, result.avg_power_w, result.ipc]
