"""Cache-miss measurement — the LLC/DRAM stress extension (paper §VII).

"with GeST is possible to stress LLC or DRAM by instructing the
framework to optimize towards cache-misses".  Requires a target machine
constructed with a :class:`~repro.cpu.cache.MemoryHierarchy`; the
counters mimic what ``perf`` exposes as LLC-load-misses.  Returned
measurements:

``[llc_misses_per_kinstr, l1_miss_rate, l2_miss_rate, avg_power_w, ipc]``
"""

from __future__ import annotations

from typing import List

from ..core.errors import MeasurementError
from ..core.individual import Individual
from ..cpu.machine import RunResult
from .base import Measurement

__all__ = ["CacheMissMeasurement"]


class CacheMissMeasurement(Measurement):
    """LLC misses per thousand instructions (the fitness) plus the
    supporting hierarchy counters."""

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        return self.measure_from_result(
            self.execute_on_target(source_text), individual)

    def measure_from_result(self, result: RunResult,
                            individual: Individual) -> List[float]:
        if result.cache is None:
            raise MeasurementError(
                "cache-miss measurement needs a machine with a "
                "MemoryHierarchy attached (SimulatedMachine(..., "
                "hierarchy=MemoryHierarchy()))")
        cache = result.cache
        instructions = max(1, result.trace.instructions_issued)
        llc_per_kinstr = cache["llc_misses"] / instructions * 1000.0
        return [llc_per_kinstr, cache["l1_miss_rate"],
                cache["l2_miss_rate"], result.avg_power_w, result.ipc]
