"""Voltage-noise measurement — the oscilloscope stand-in (paper §VI).

"During the binary execution the minimum and maximum voltage observed
on the oscilloscope are recorded.  The binaries that achieve the
highest difference between maximum and minimum recorded voltages are
considered the fittest."  Returned measurements:

``[peak_to_peak_v, max_droop_v, v_min, v_max, average_power_w]``
"""

from __future__ import annotations

from typing import List

from ..core.individual import Individual
from ..cpu.machine import RunResult
from .base import Measurement

__all__ = ["OscilloscopeMeasurement"]


class OscilloscopeMeasurement(Measurement):
    """Peak-to-peak die voltage from the PDN waveform."""

    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        return self.measure_from_result(
            self.execute_on_target(source_text), individual)

    def measure_from_result(self, result: RunResult,
                            individual: Individual) -> List[float]:
        trace = result.voltage
        return [trace.peak_to_peak, trace.max_droop, trace.v_min,
                trace.v_max, result.avg_power_w]
