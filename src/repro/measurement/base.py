"""The measurement template class (paper Section III.C).

The paper's ``Measurement.py`` is an abstract class users inherit to
script custom measurement procedures: it offers ssh/scp utilities for
driving the target machine, and subclasses override ``init`` (parameter
parsing) and ``measure`` (the actual procedure).  This module is the
analogue: :class:`Measurement` owns a
:class:`~repro.cpu.target.SimulatedTarget` and provides the
upload→compile→run→cleanup workflow; concrete classes override
:meth:`init` and :meth:`measure`.

The engine loads measurement classes dynamically by dotted name from
the main configuration (:mod:`repro.core.loader`), so adding a new
procedure requires no change to framework code — the plug-and-play
property the paper demonstrates.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from ..core.errors import ConfigError, MeasurementError
from ..core.individual import Individual
from ..cpu.machine import RunResult
from ..cpu.target import SimulatedTarget

__all__ = ["Measurement"]


def _stable_repr(value) -> str:
    """A repr that is identical across processes.

    The cache fingerprint must survive hash randomisation — a plain
    ``repr`` of a set or frozenset orders elements by their per-process
    string hashes, so a fingerprint written by one run would silently
    never match in the next and every persisted cache load would come
    back empty.
    """
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(repr(v) for v in value)) + "}"
    if isinstance(value, dict):
        return "{" + ", ".join(f"{key!r}: {_stable_repr(item)}"
                               for key, item in value.items()) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{f.name}={_stable_repr(getattr(value, f.name))}"
            for f in dataclasses.fields(value))
        return f"{type(value).__name__}({fields})"
    if isinstance(value, tuple):
        return "(" + ", ".join(_stable_repr(v) for v in value) + ")"
    if isinstance(value, list):
        return "[" + ", ".join(_stable_repr(v) for v in value) + "]"
    return repr(value)


class Measurement(ABC):
    """Base class for measurement procedures.

    Parameters come as a flat string→string mapping — the parsed
    contents of the separate measurement XML file the paper describes.
    Common parameters understood by the stock helpers:

    ``duration``        seconds the binary runs per measurement (default 5)
    ``samples``         number of instrument samples per run (default 10)
    ``cores``           active cores during GA measurement (default 1 —
                        the paper optimises on a single core)
    ``repeats``         independent run-and-measure repetitions per
                        individual, aggregated per measurement index
                        (default 1).  The paper attributes part of its
                        single-core methodology to measurement
                        variability in OS environments; repeating and
                        aggregating is the standard mitigation.
    ``aggregate``       ``mean`` (default) or ``median`` across repeats
    ``source_name``     remote file name for the uploaded source
    """

    def __init__(self, target: SimulatedTarget,
                 params: Optional[Dict[str, str]] = None) -> None:
        self.target = target
        if not target.connected:
            target.connect()
        self.duration_s = 5.0
        self.sample_count = 10
        self.cores = 1
        self.repeats = 1
        self.aggregate = "mean"
        self.source_name = "individual.s"
        #: The raw parameter mapping, kept for :meth:`fingerprint` so
        #: subclass-specific knobs enter the cache address without every
        #: subclass having to override it.
        self.params: Dict[str, str] = dict(params or {})
        self.init(dict(self.params))

    # -- overridables ------------------------------------------------------

    def init(self, params: Dict[str, str]) -> None:
        """Parse measurement parameters; subclasses may extend."""
        try:
            if "duration" in params:
                self.duration_s = float(params["duration"])
            if "samples" in params:
                self.sample_count = int(params["samples"])
            if "cores" in params:
                self.cores = int(params["cores"])
            if "repeats" in params:
                self.repeats = int(params["repeats"])
        except ValueError as exc:
            raise MeasurementError(
                f"bad measurement parameter value: {exc}") from exc
        if "source_name" in params:
            self.source_name = params["source_name"]
        if "aggregate" in params:
            self.aggregate = params["aggregate"]
        if self.duration_s <= 0:
            raise MeasurementError("duration must be positive")
        if self.sample_count < 1:
            raise MeasurementError("samples must be >= 1")
        if self.repeats < 1:
            raise MeasurementError("repeats must be >= 1")
        if self.aggregate not in ("mean", "median"):
            raise MeasurementError(
                f"unknown aggregate {self.aggregate!r}; "
                "expected 'mean' or 'median'")

    @abstractmethod
    def measure(self, source_text: str,
                individual: Individual) -> List[float]:
        """Run the procedure once and return the measurement list.

        The first value is, by convention, what
        :class:`~repro.fitness.default_fitness.DefaultFitness` uses.
        Compile failures must propagate as
        :class:`~repro.core.errors.AssemblyError` — the engine turns
        them into zero-fitness individuals.

        The engine should call :meth:`measure_repeated`, which wraps
        this with the ``repeats``/``aggregate`` policy; with the
        default ``repeats=1`` the two are identical.
        """

    def measure_from_result(self, result: RunResult,
                            individual: Individual) -> List[float]:
        """Derive the measurement list from an already-executed run.

        The batched evaluation backend
        (:class:`repro.evaluation.backends.BatchedBackend`) executes a
        whole generation's programs in one vectorized pass and then
        asks each measurement to interpret its individual's
        :class:`~repro.cpu.machine.RunResult`.  Stock procedures
        implement this and define :meth:`measure` as
        ``measure_from_result(execute_on_target(source), individual)``;
        a procedure whose measurement is pure arithmetic on one
        ``RunResult`` gets batched execution for free by doing the
        same.  Procedures that drive the target in richer ways (extra
        runs, supply sweeps, file I/O) simply don't override this, and
        the batched backend falls back to their :meth:`measure` —
        correctness is never contingent on batching.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support batched execution")

    def supports_batching(self) -> bool:
        """True when :meth:`measure_from_result` is implemented, i.e.
        one target execution per measurement fully determines the
        values."""
        return type(self).measure_from_result \
            is not Measurement.measure_from_result

    def measure_repeated(self, source_text: str,
                         individual: Individual) -> List[float]:
        """Run :meth:`measure` ``repeats`` times and aggregate each
        measurement index across repetitions.
        """
        if self.repeats == 1:
            return self.measure(source_text, individual)
        rounds = [self.measure(source_text, individual)
                  for _ in range(self.repeats)]
        return self.aggregate_rounds(rounds, individual)

    def aggregate_rounds(self, rounds: List[List[float]],
                         individual: Individual) -> List[float]:
        """Aggregate per-repeat measurement lists index by index.

        Every repeat must return the same number of values; ragged
        widths mean the procedure's output schema is unstable, and
        silently truncating to the narrowest round would corrupt
        downstream measurement indices (output file names, complex
        fitness terms), so they raise :class:`ConfigError` instead.
        """
        if len(rounds) == 1:
            return rounds[0]
        widths = [len(r) for r in rounds]
        if len(set(widths)) > 1:
            uid = individual.uid if individual is not None else "?"
            raise ConfigError(
                f"measurement {type(self).__name__!r} returned ragged "
                f"measurement widths {widths} across {len(rounds)} "
                f"repeats for individual uid={uid}; every repeat must "
                "return the same number of values")
        width = widths[0]
        aggregated: List[float] = []
        for index in range(width):
            values = sorted(r[index] for r in rounds)
            if self.aggregate == "median":
                middle = len(values) // 2
                if len(values) % 2:
                    aggregated.append(values[middle])
                else:
                    aggregated.append(
                        (values[middle - 1] + values[middle]) / 2.0)
            else:
                aggregated.append(sum(values) / len(values))
        return aggregated

    # -- evaluation-layer contract ------------------------------------------
    #
    # The staged pipeline (repro.evaluation) treats a measurement as a
    # replicable board: picklable (so ProcessPoolBackend can ship or
    # fork copies), side-effect-free per call (execute_on_target cleans
    # up after itself), and reseedable (so every individual observes a
    # pinned noise substream regardless of evaluation order or worker).

    def reseed_noise(self, key: int) -> None:
        """Pin the target machine's noise stream for one individual."""
        self.target.machine.reseed(key)

    def fingerprint(self) -> str:
        """Stable description of everything besides the rendered source
        that determines this procedure's measurements — the cache's
        content address (:class:`repro.evaluation.cache.EvaluationCache`).
        """
        machine = self.target.machine
        cls = type(self)
        params = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return "|".join([
            f"{cls.__module__}.{cls.__qualname__}",
            f"arch={_stable_repr(machine.arch)}",
            f"env={machine.environment}",
            f"sim_cycles={machine.sim_cycles}",
            f"supply={machine.supply_v!r}",
            f"nominal_hz={machine.nominal_frequency_hz!r}",
            f"hierarchy={_stable_repr(machine.hierarchy)}",
            f"params={params}",
        ])

    # -- workflow helpers shared by the stock procedures ------------------------

    def execute_on_target(self, source_text: str,
                          supply_v: Optional[float] = None) -> RunResult:
        """The full upload → compile → run → cleanup round trip."""
        target = self.target
        target.copy_file(self.source_name, source_text)
        try:
            binary = target.compile_file(self.source_name)
            return target.run_binary(
                binary,
                duration_s=self.duration_s,
                cores=self.cores,
                power_sample_count=self.sample_count,
                supply_v=supply_v,
            )
        finally:
            target.remove_file(self.source_name)
