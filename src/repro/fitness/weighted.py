"""Generic weighted multi-objective fitness.

A reusable building block for "more complicated fitness functions" the
paper motivates (e.g. "maximize voltage droop while keeping average
power low"): a signed, normalised, weighted sum over measurement
indices.  Negative weights penalise; each term is divided by its
normaliser so objectives with different units can be mixed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.errors import ConfigError, MeasurementError
from ..core.individual import Individual
from .default_fitness import DefaultFitness

__all__ = ["WeightedFitness", "DroopOverPowerFitness"]


class WeightedFitness(DefaultFitness):
    """``F = Σ_k weight_k · measurements[index_k] / normaliser_k``."""

    def __init__(self, terms: Sequence[Tuple[int, float, float]]) -> None:
        """``terms`` is a sequence of (measurement_index, weight,
        normaliser) triples."""
        if not terms:
            raise ConfigError("weighted fitness needs at least one term")
        for index, _, normaliser in terms:
            if index < 0:
                raise ConfigError(f"negative measurement index {index}")
            if normaliser == 0:
                raise ConfigError("normaliser cannot be zero")
        self.terms = tuple(terms)

    def get_fitness(self, measurements: Sequence[float],
                    individual: Individual) -> float:
        total = 0.0
        for index, weight, normaliser in self.terms:
            if index >= len(measurements):
                raise MeasurementError(
                    f"fitness term references measurement {index} but only "
                    f"{len(measurements)} were taken")
            total += weight * measurements[index] / normaliser
        return total

    getFitness = get_fitness


class DroopOverPowerFitness(WeightedFitness):
    """Maximise voltage droop while keeping average power low — the
    paper's example of a desirable complex fitness for dI/dt searches.

    Works with :class:`~repro.measurement.oscilloscope.
    OscilloscopeMeasurement` output
    (``[pk-pk, droop, v_min, v_max, avg_power]``).
    """

    def __init__(self, droop_normaliser_v: float,
                 power_normaliser_w: float,
                 power_penalty: float = 0.25) -> None:
        if droop_normaliser_v <= 0 or power_normaliser_w <= 0:
            raise ConfigError("normalisers must be positive")
        if power_penalty < 0:
            raise ConfigError("power penalty must be non-negative")
        super().__init__([
            (1, 1.0, droop_normaliser_v),
            (4, -power_penalty, power_normaliser_w),
        ])
