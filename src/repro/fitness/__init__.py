"""Fitness functions (paper Section III.C and Equation 1)."""

from .complex_fitness import TemperatureSimplicityFitness
from .default_fitness import DefaultFitness
from .weighted import DroopOverPowerFitness, WeightedFitness

__all__ = [
    "DefaultFitness",
    "TemperatureSimplicityFitness",
    "DroopOverPowerFitness",
    "WeightedFitness",
]
