"""Equation 1 of the paper: temperature + instruction-stream simplicity.

``F = (M_T − I_T) / (MAX_T − I_T) · w_t + (T_I − U_I) / T_I · w_s``

* the first part rewards high measured temperature, normalised to a
  0–1 *temperature score* between the idle temperature ``I_T`` and a
  maximum temperature ``MAX_T`` (from a previous GA run or a TJMAX-like
  specification);
* the second rewards using few unique instructions ``U_I`` out of the
  individual's total ``T_I`` — 25 unique out of 50 scores 0.5, 15 out
  of 50 scores 0.7, exactly the paper's worked examples.

Both parts contribute equally with the default weights (0.5 each).
The measured temperature is expected as the *first* measurement value
(what :class:`~repro.measurement.temperature.TemperatureMeasurement`
reports).
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import ConfigError, MeasurementError
from ..core.individual import Individual
from .default_fitness import DefaultFitness

__all__ = ["TemperatureSimplicityFitness"]


class TemperatureSimplicityFitness(DefaultFitness):
    """The paper's complex multi-objective fitness (Equation 1)."""

    def __init__(self, idle_temperature_c: float,
                 max_temperature_c: float,
                 temperature_weight: float = 0.5,
                 simplicity_weight: float = 0.5) -> None:
        if max_temperature_c <= idle_temperature_c:
            raise ConfigError(
                "max temperature must exceed idle temperature "
                f"({max_temperature_c} <= {idle_temperature_c})")
        if temperature_weight < 0 or simplicity_weight < 0:
            raise ConfigError("fitness weights must be non-negative")
        self.idle_temperature_c = idle_temperature_c
        self.max_temperature_c = max_temperature_c
        self.temperature_weight = temperature_weight
        self.simplicity_weight = simplicity_weight

    def temperature_score(self, measured_c: float) -> float:
        """(M_T − I_T) / (MAX_T − I_T), clamped to [0, 1]."""
        span = self.max_temperature_c - self.idle_temperature_c
        score = (measured_c - self.idle_temperature_c) / span
        return min(1.0, max(0.0, score))

    def simplicity_score(self, individual: Individual) -> float:
        """(T_I − U_I) / T_I — fewer unique opcodes is simpler."""
        total = len(individual)
        if total == 0:
            return 0.0
        unique = individual.unique_instruction_count()
        return (total - unique) / total

    def get_fitness(self, measurements: Sequence[float],
                    individual: Individual) -> float:
        if not measurements:
            raise MeasurementError(
                "cannot compute fitness from an empty measurement list")
        return (self.temperature_score(measurements[0])
                * self.temperature_weight
                + self.simplicity_score(individual)
                * self.simplicity_weight)

    getFitness = get_fitness
