"""Default fitness (paper Section III.C).

"The framework offers a default fitness class ``DefaultFitness.py``
that simply uses the first measurement (in the list order) as the
fitness function."  Custom fitness classes inherit from this one and
override :meth:`get_fitness`; the engine loads them dynamically by
dotted name from the main configuration file.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import MeasurementError
from ..core.individual import Individual

__all__ = ["DefaultFitness"]


class DefaultFitness:
    """Fitness = first measurement value."""

    def get_fitness(self, measurements: Sequence[float],
                    individual: Individual) -> float:
        if not measurements:
            raise MeasurementError(
                "cannot compute fitness from an empty measurement list")
        return float(measurements[0])

    # Method-name alias matching the original GeST API surface.
    getFitness = get_fitness
