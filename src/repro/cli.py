"""GeST-style command line.

The original tool is driven as ``python gest.py <config.xml>``.  This
reproduction mirrors that::

    gest run config.xml [--generations N] [--platform NAME] [--no-screen]
                        [--workers N] [--cache | --no-cache]
                        [--strategy NAME]
    gest measure source.s --platform NAME [--cores N]
    gest lint config.xml [--json]
    gest check source.s [--platform NAME] [--json]
    gest analyze source.s [--platform NAME] [--intent METRIC]
                          [--fitness-target X] [--json]
    gest selfcheck [--json]
    gest stats results_dir/
    gest presets
    gest serve [--db FILE] [--workers N] [--until-idle]
    gest submit config.xml [--db FILE] [--platform NAME]
                           [--strategy NAME] [--seed N] [--generations N]
    gest runs [--db FILE] [--status STATUS]
    gest tail run-id [--db FILE] [--follow]

``run`` executes a GA search described by a main configuration file
against a simulated platform, recording outputs per the paper's
conventions.  The last four subcommands are GeST-as-a-service:
``submit`` enqueues a run into a sqlite result store
(:mod:`repro.store`), ``serve`` starts the asyncio orchestrator
(:mod:`repro.service`) that executes queued runs on concurrent worker
slots sharing one evaluation cache, ``runs`` lists the ledger and
``tail`` streams a run's generation events as JSONL.  ``measure`` runs one source file (e.g. a recorded
individual) and prints every sensor — the quick way to re-score a
saved virus.  ``lint`` runs the static config/library checks of
:mod:`repro.staticcheck` (also run eagerly by ``run``); ``check``
assembles one source file and reports its dataflow diagnostics and
static profile; ``analyze`` additionally prices the loop body against
the platform's static cost model (:mod:`repro.staticcheck.costmodel`),
printing the per-instruction pressure table, the static IPC/energy
bounds and any ``SC3xx`` findings; ``selfcheck`` runs the framework
determinism lint over
the installed ``repro`` package.  ``stats`` replays the released
post-processing script on a recorded run.  ``presets`` lists the
available simulated platforms.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis.postprocess import run_statistics
from .core.config import parse_config_file
from .core.engine import GeneticEngine
from .core.errors import GestError
from .core.loader import instantiate, load_class
from .core.output import OutputRecorder
from .cpu.machine import SimulatedMachine
from .cpu.microarch import preset_names
from .cpu.target import SimulatedTarget
from .evaluation import EvaluationCache, StageTimings
from .fitness.default_fitness import DefaultFitness
from .measurement.base import Measurement
from .search import STRATEGIES
from .staticcheck import (StaticScreen, analyze_cost, analyze_program,
                          diagnostics_to_json, format_diagnostics,
                          has_errors, lint_config, lint_config_file,
                          lint_tree, render_cost_table,
                          repro_package_root, sort_diagnostics)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gest",
        description="GeST reproduction: GA-based CPU stress-test "
                    "generation on simulated platforms")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a GA search from a config file")
    run.add_argument("config", type=Path, help="main configuration XML")
    run.add_argument("--platform", default="cortex_a15",
                     choices=preset_names(),
                     help="simulated target platform")
    run.add_argument("--generations", type=int, default=None,
                     help="override the configured generation count")
    run.add_argument("--results", type=Path, default=None,
                     help="override the configured results directory")
    run.add_argument("--seed", type=int, default=None,
                     help="override the configured GA seed")
    run.add_argument("--quiet", action="store_true")
    run.add_argument("--no-screen", action="store_true",
                     help="disable pre-measurement static screening")
    run.add_argument("--no-lint", action="store_true",
                     help="skip the eager config lint before the search")
    run.add_argument("--workers", type=int, default=None,
                     help="evaluation worker processes (default: the "
                          "config's <evaluation workers=...>, or 1); "
                          "each worker replicates the simulated board; "
                          "0 means auto — size the pool from this "
                          "machine and pick the engine per generation")
    run.add_argument("--backend", default=None,
                     choices=("auto", "serial", "batched", "pool"),
                     help="evaluation execution engine (default: the "
                          "config's <evaluation backend=...>, or auto); "
                          "'batched' evaluates a whole generation as "
                          "one vectorized pass, 'auto' routes each "
                          "generation to the cheapest engine")
    run.add_argument("--strategy", default=None,
                     choices=STRATEGIES.names(),
                     help="search strategy proposing populations "
                          "(default: the config's <search strategy=...>"
                          ", or genetic — the paper's GA)")
    cache_group = run.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", dest="cache", action="store_true", default=None,
        help="memoise evaluations in <results>/evaluation_cache.json "
             "(default: the config's <evaluation cache=...>)")
    cache_group.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="disable the evaluation cache")

    measure = sub.add_parser(
        "measure", help="compile and run one source file, print sensors")
    measure.add_argument("source", type=Path, help="assembly source file")
    measure.add_argument("--platform", default="cortex_a15",
                         choices=preset_names())
    measure.add_argument("--cores", type=int, default=None,
                         help="instances to run (default: all cores)")
    measure.add_argument("--duration", type=float, default=5.0)
    measure.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="statically lint a main configuration file")
    lint.add_argument("config", type=Path, help="main configuration XML")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit diagnostics as JSON (for CI)")

    check = sub.add_parser(
        "check", help="assemble a source file and report dataflow "
                      "diagnostics and its static profile")
    check.add_argument("source", type=Path, help="assembly source file")
    check.add_argument("--platform", default="cortex_a15",
                       choices=preset_names(),
                       help="platform whose syntax and cache geometry "
                            "the check uses")
    check.add_argument("--json", action="store_true", dest="as_json")

    analyze = sub.add_parser(
        "analyze", help="price a source file against a platform's "
                        "static cost model (bounds, pressure table, "
                        "SC3xx diagnostics)")
    analyze.add_argument("source", type=Path, help="assembly source file")
    analyze.add_argument("--platform", default="cortex_a15",
                         choices=preset_names(),
                         help="platform whose latency/port/energy "
                              "tables price the body")
    analyze.add_argument("--intent", default=None,
                         choices=("power", "energy", "temperature",
                                  "didt", "ipc"),
                         help="stress intent (fitness metric) for the "
                              "SC302/SC303 checks")
    analyze.add_argument("--fitness-target", type=float, default=None,
                         help="fitness value the search hopes to reach; "
                              "SC303 fires when the static bound rules "
                              "it out")
    analyze.add_argument("--json", action="store_true", dest="as_json")

    selfcheck = sub.add_parser(
        "selfcheck", help="run the framework determinism lint over the "
                          "installed repro package")
    selfcheck.add_argument("--path", type=Path, default=None,
                           help="lint this tree instead of the package")
    selfcheck.add_argument("--json", action="store_true", dest="as_json")

    stats = sub.add_parser("stats",
                           help="post-process a recorded run directory")
    stats.add_argument("results_dir", type=Path)

    sub.add_parser("presets", help="list simulated platforms")

    db_help = "sqlite result store (default: gest.sqlite)"

    serve = sub.add_parser(
        "serve", help="run the orchestrator: execute queued runs on "
                      "concurrent worker slots sharing one store")
    serve.add_argument("--db", type=Path, default=Path("gest.sqlite"),
                       help=db_help)
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent run slots")
    serve.add_argument("--queue-size", type=int, default=8,
                       help="bound on claimed-but-unstarted runs")
    serve.add_argument("--workdir", type=Path, default=None,
                       help="also record each run's results directory "
                            "under <workdir>/<run-id>/")
    serve.add_argument("--eval-workers", type=int, default=1,
                       help="evaluation worker processes per run")
    serve.add_argument("--until-idle", action="store_true",
                       help="exit once the queue is drained instead of "
                            "serving forever")

    submit = sub.add_parser(
        "submit", help="enqueue a run into the result store")
    submit.add_argument("config", type=Path, help="main configuration XML")
    submit.add_argument("--db", type=Path, default=Path("gest.sqlite"),
                        help=db_help)
    submit.add_argument("--platform", default="cortex_a15",
                        choices=preset_names(),
                        help="simulated target platform")
    submit.add_argument("--strategy", default=None,
                        choices=STRATEGIES.names(),
                        help="search strategy (default: the config's)")
    submit.add_argument("--seed", type=int, default=None,
                        help="override the configured GA seed")
    submit.add_argument("--generations", type=int, default=None,
                        help="override the configured generation count")
    submit.add_argument("--no-lint", action="store_true",
                        help="skip the eager config lint")

    runs = sub.add_parser("runs", help="list the result store's runs")
    runs.add_argument("--db", type=Path, default=Path("gest.sqlite"),
                      help=db_help)
    runs.add_argument("--status", default=None,
                      choices=("queued", "running", "finished", "failed",
                               "cancelled"),
                      help="only runs in this state")

    tail = sub.add_parser(
        "tail", help="stream a run's events from the store as JSONL")
    tail.add_argument("run_id", help="run id as printed by submit/runs")
    tail.add_argument("--db", type=Path, default=Path("gest.sqlite"),
                      help=db_help)
    tail.add_argument("--follow", action="store_true",
                      help="keep polling until the run reaches a "
                           "terminal state")
    tail.add_argument("--poll-interval", type=float, default=0.5,
                      help="seconds between polls with --follow")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    config = parse_config_file(args.config)
    if not args.no_lint:
        # Eager lint: a malformed library means generations of
        # zero-fitness individuals — fail at load time instead.
        diagnostics = lint_config(config, file=str(args.config))
        if has_errors(diagnostics):
            for diag in diagnostics:
                print(diag.format(), file=sys.stderr)
            print(f"error: configuration {args.config} failed the static "
                  "lint; fix the diagnostics above or re-run with "
                  "--no-lint", file=sys.stderr)
            return 1
    if args.seed is not None:
        config.ga.seed = args.seed
    machine = SimulatedMachine(args.platform,
                               seed=config.ga.seed or 0)
    target = SimulatedTarget(machine)
    target.connect()
    measurement = instantiate(config.measurement_class, Measurement,
                              target, config.measurement_params)
    fitness_cls = load_class(config.fitness_class)
    fitness = fitness_cls() if fitness_cls is not DefaultFitness \
        else DefaultFitness()

    results_dir = args.results or config.results_dir
    recorder = OutputRecorder(results_dir) if results_dir else None
    screen = None if args.no_screen else StaticScreen.for_machine(machine)

    if args.cache is not None:
        config.evaluation.cache = args.cache
    cache = None
    cache_path = None
    if config.evaluation.cache:
        fingerprint = (f"{measurement.fingerprint()}"
                       f"|noise_seed={config.ga.seed or 0}")
        if recorder is not None:
            cache_path = recorder.results_dir / "evaluation_cache.json"
        if cache_path is not None and cache_path.exists():
            cache = EvaluationCache.load(cache_path, fingerprint)
        else:
            cache = EvaluationCache(fingerprint)

    engine = GeneticEngine(config, measurement, fitness, recorder=recorder,
                           screen=screen, cache=cache, workers=args.workers,
                           backend=args.backend, strategy=args.strategy)
    history = engine.run(args.generations)
    if cache is not None and cache_path is not None:
        cache.save(cache_path)

    best = history.best_individual
    if not args.quiet:
        print(f"search strategy: {engine.strategy.name}")
        for stats in history.generations:
            screened = (f"  screened {stats.screen_failures:2d}"
                        if stats.screen_failures else "")
            print(f"generation {stats.number:3d}  "
                  f"best {stats.best_fitness:10.4f}  "
                  f"mean {stats.mean_fitness:10.4f}{screened}")
        totals = StageTimings()
        cache_hits = measured = 0
        for stats in history.generations:
            totals.add(stats.timings)
            cache_hits += stats.cache_hits
            measured += stats.measured
        print(f"\nevaluation: {measured} measured, "
              f"{cache_hits} cache hit(s); "
              f"render {totals.render_s:.2f}s  "
              f"screen {totals.screen_s:.2f}s  "
              f"measure {totals.measure_s:.2f}s  "
              f"score {totals.score_s:.2f}s")
        print(f"\nbest individual uid={best.uid} "
              f"fitness={best.fitness:.4f} "
              f"measurements={[round(m, 4) for m in best.measurements]}")
        print(best.render_body())
        if recorder is not None:
            print(f"\nresults recorded under {recorder.results_dir}")
    return 0


def _command_measure(args: argparse.Namespace) -> int:
    if not args.source.exists():
        print(f"error: source file {args.source} does not exist",
              file=sys.stderr)
        return 1
    machine = SimulatedMachine(args.platform, seed=args.seed)
    cores = args.cores if args.cores is not None \
        else machine.arch.core_count
    result = machine.run_source(args.source.read_text(),
                                name=args.source.name,
                                cores=cores, duration_s=args.duration)
    print(f"platform:        {args.platform} "
          f"({cores} instance(s), {args.duration:.1f}s)")
    print(f"IPC:             {result.ipc:.3f}")
    print(f"avg chip power:  {result.avg_power_w:.3f} W "
          f"(peak sample {result.peak_power_w:.3f} W)")
    print(f"chip temp:       {result.temperature_c:.2f} C")
    print(f"voltage pk-pk:   {result.peak_to_peak_v * 1000:.2f} mV "
          f"(min {result.v_min:.4f} V)")
    if result.noc_power_w:
        print(f"NoC power:       {result.noc_power_w:.2f} W")
    print(f"status:          {'CRASHED' if result.crashed else 'ok'}")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    diagnostics = sort_diagnostics(lint_config_file(args.config))
    if args.as_json:
        print(diagnostics_to_json(diagnostics, file=str(args.config)))
    else:
        print(format_diagnostics(diagnostics))
    return 1 if has_errors(diagnostics) else 0


def _command_check(args: argparse.Namespace) -> int:
    if not args.source.exists():
        print(f"error: source file {args.source} does not exist",
              file=sys.stderr)
        return 1
    machine = SimulatedMachine(args.platform)
    hierarchy = machine.hierarchy
    l1 = hierarchy.l1_config.size_bytes if hierarchy is not None else None
    l2 = hierarchy.l2_config.size_bytes if hierarchy is not None else None
    try:
        program = machine.compile(args.source.read_text(),
                                  name=args.source.name)
    except GestError as exc:
        if args.as_json:
            print(diagnostics_to_json([], file=str(args.source),
                                      assembly_error=str(exc)))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 1
    kwargs = {} if hierarchy is None else {"l1_bytes": l1, "l2_bytes": l2}
    report = analyze_program(program, source_file=str(args.source),
                             **kwargs)
    report.diagnostics = sort_diagnostics(report.diagnostics)
    profile = report.profile
    if args.as_json:
        print(diagnostics_to_json(
            report.diagnostics, file=str(args.source),
            profile={
                "loop_length": profile.loop_length,
                "chain_depth": profile.chain_depth,
                "mix_vector": profile.mix_vector,
                "footprint_bytes": profile.footprint_bytes,
                "distinct_lines": profile.distinct_lines,
                "uninitialised_reads": profile.uninitialised_reads,
                "dead_writes": profile.dead_writes,
                "memory_instructions": profile.memory_instructions,
            }))
        return 1 if has_errors(report.diagnostics) else 0
    print(f"program:        {args.source.name} "
          f"({args.platform}, {machine.assembler.syntax_name})")
    print(f"loop length:    {profile.loop_length}")
    print(f"chain depth:    {profile.chain_depth}")
    mix = ", ".join(f"{name}={value:.2f}"
                    for name, value in sorted(profile.mix_vector.items())
                    if value)
    print(f"mix vector:     {mix or '(empty)'}")
    print(f"footprint:      {profile.footprint_bytes} bytes "
          f"({profile.distinct_lines} lines, "
          f"{profile.memory_instructions} memory instructions)")
    print(f"dead writes:    {profile.dead_writes}")
    print(f"uninit reads:   {profile.uninitialised_reads}")
    print(format_diagnostics(report.diagnostics))
    return 1 if has_errors(report.diagnostics) else 0


def _command_analyze(args: argparse.Namespace) -> int:
    if not args.source.exists():
        print(f"error: source file {args.source} does not exist",
              file=sys.stderr)
        return 1
    machine = SimulatedMachine(args.platform)
    hierarchy = machine.hierarchy
    kwargs = {}
    if hierarchy is not None:
        kwargs = {"l1_bytes": hierarchy.l1_config.size_bytes,
                  "l2_bytes": hierarchy.l2_config.size_bytes,
                  "line_bytes": hierarchy.l1_config.line_bytes}
    try:
        program = machine.compile(args.source.read_text(),
                                  name=args.source.name)
    except GestError as exc:
        if args.as_json:
            print(diagnostics_to_json([], file=str(args.source),
                                      assembly_error=str(exc)))
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 1
    report = analyze_cost(program, machine.arch,
                          source_file=str(args.source),
                          intent=args.intent,
                          fitness_target=args.fitness_target, **kwargs)
    report.diagnostics = sort_diagnostics(report.diagnostics)
    if args.as_json:
        print(diagnostics_to_json(report.diagnostics,
                                  file=str(args.source),
                                  cost=report.cost.to_dict()))
        return 1 if has_errors(report.diagnostics) else 0
    print(f"program: {args.source.name} "
          f"({args.platform}, {machine.assembler.syntax_name})")
    print()
    print(render_cost_table(report))
    print()
    print(format_diagnostics(report.diagnostics))
    return 1 if has_errors(report.diagnostics) else 0


def _command_selfcheck(args: argparse.Namespace) -> int:
    root = args.path if args.path is not None else repro_package_root()
    diagnostics = lint_tree(root)
    if args.as_json:
        print(diagnostics_to_json(diagnostics, root=str(root)))
    else:
        print(f"determinism lint over {root}")
        print(format_diagnostics(diagnostics))
    return 1 if has_errors(diagnostics) else 0


def _command_stats(args: argparse.Namespace) -> int:
    stats = run_statistics(args.results_dir)
    print(f"generations: {stats.generations}")
    print(f"overall best fitness: {stats.overall_best_fitness:.4f} "
          f"(generation {stats.overall_best_generation})")
    print("best fitness per generation:")
    for number, value in enumerate(stats.best_fitness_per_generation):
        print(f"  {number:3d}  {value:.4f}")
    final_mix = stats.best_mix_per_generation[-1]
    print("final fittest instruction mix:")
    for category, count in sorted(final_mix.items()):
        if count:
            print(f"  {category:12s} {count}")
    # stats.jsonl is optional and versioned: read it tolerantly —
    # unknown keys from newer schemas pass through, unparseable lines
    # (a killed run's torn write under the old appender) are skipped.
    records = stats.stats_records
    if records:
        cache_hits = sum(int(r.get("cache_hits", 0)) for r in records)
        measured = sum(int(r.get("measured", 0)) for r in records)
        run_ids = sorted({r["run_id"] for r in records if "run_id" in r})
        schemas = sorted({r["schema"] for r in records if "schema" in r})
        line = (f"stats.jsonl: {len(records)} record(s), "
                f"{measured} measured, {cache_hits} cache hit(s)")
        if run_ids:
            line += f", run {', '.join(str(r) for r in run_ids)}"
        if schemas:
            line += f" (schema {', '.join(str(s) for s in schemas)})"
        print(line)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .service import Orchestrator
    orchestrator = Orchestrator(args.db, workers=args.workers,
                                queue_limit=args.queue_size,
                                workdir=args.workdir,
                                evaluation_workers=args.eval_workers)
    mode = "until idle" if args.until_idle else "until interrupted"
    print(f"serving {args.db} with {args.workers} worker slot(s) {mode}")
    try:
        completed = asyncio.run(orchestrator.serve(
            until_idle=args.until_idle))
    except KeyboardInterrupt:
        print("interrupted; claimed runs resume on the next serve")
        return 0
    print(f"executed {len(completed)} run(s)")
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    from .store import RunStore
    config = parse_config_file(args.config)
    if not args.no_lint:
        diagnostics = lint_config(config, file=str(args.config))
        if has_errors(diagnostics):
            for diag in diagnostics:
                print(diag.format(), file=sys.stderr)
            print(f"error: configuration {args.config} failed the static "
                  "lint; fix the diagnostics above or re-run with "
                  "--no-lint", file=sys.stderr)
            return 1
    with RunStore(args.db) as store:
        run_id = store.submit_run(config, platform=args.platform,
                                  strategy=args.strategy, seed=args.seed,
                                  generations=args.generations)
    print(run_id)
    return 0


def _command_runs(args: argparse.Namespace) -> int:
    from .store import RunStore
    if not args.db.exists():
        print(f"error: result store {args.db} does not exist",
              file=sys.stderr)
        return 1
    with RunStore(args.db) as store:
        rows = store.list_runs(status=args.status)
    if not rows:
        print("no runs" + (f" with status {args.status}" if args.status
                           else ""))
        return 0
    print(f"{'RUN':<12} {'STATUS':<10} {'PLATFORM':<12} {'STRATEGY':<12} "
          f"{'SEED':>6} {'GENS':>5} {'BEST':>10}")
    for row in rows:
        best = f"{row.best_fitness:.4f}" if row.best_fitness is not None \
            else "-"
        print(f"{row.run_id:<12} {row.status:<10} {row.platform:<12} "
              f"{row.strategy or 'config':<12} "
              f"{row.seed if row.seed is not None else '-':>6} "
              f"{row.generations if row.generations is not None else '-':>5}"
              f" {best:>10}")
    return 0


def _command_tail(args: argparse.Namespace) -> int:
    import json
    import time

    from .store import RunStore
    if not args.db.exists():
        print(f"error: result store {args.db} does not exist",
              file=sys.stderr)
        return 1
    terminal = {"finished", "failed", "cancelled"}
    with RunStore(args.db) as store:
        run = store.get_run(args.run_id)  # loud error for unknown ids
        last_seq = -1
        while True:
            for seq, event_type, payload in store.events(
                    args.run_id, after_seq=last_seq):
                last_seq = seq
                print(json.dumps({"seq": seq, "event": event_type,
                                  **payload}, sort_keys=True))
            run = store.get_run(args.run_id)
            if not args.follow or run.status in terminal:
                break
            time.sleep(args.poll_interval)
    if run.status == "failed":
        print(f"error: {args.run_id} failed: {run.error}", file=sys.stderr)
        return 1
    return 0


def _command_presets() -> int:
    from .cpu.microarch import PRESETS
    for name in preset_names():
        arch = PRESETS[name]
        kind = "in-order" if arch.in_order else "out-of-order"
        print(f"{name:12s} {arch.isa:4s} {arch.core_count} cores  "
              f"{arch.frequency_hz / 1e9:.1f} GHz  {kind}, "
              f"{arch.issue_width}-wide")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _command_run(args)
        if args.command == "measure":
            return _command_measure(args)
        if args.command == "lint":
            return _command_lint(args)
        if args.command == "check":
            return _command_check(args)
        if args.command == "analyze":
            return _command_analyze(args)
        if args.command == "selfcheck":
            return _command_selfcheck(args)
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "presets":
            return _command_presets()
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "submit":
            return _command_submit(args)
        if args.command == "runs":
            return _command_runs(args)
        if args.command == "tail":
            return _command_tail(args)
    except GestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe — exit quietly like
        # well-behaved UNIX tools do.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
