"""x86-flavoured SimISA syntax front-end.

Covers the shapes used by the paper's AMD Athlon dI/dt experiment:
two-operand integer ALU ops (destination is also a source), integer
multiply/divide, SSE packed/scalar float ops, FMA, ``mov`` loads and
stores with ``[base+offset]`` addressing, compare/dec and conditional
jumps, and the ``jmp 1f`` / ``1:`` predictable branch idiom.

Register files: the 16 GPRs (``rax``...``r15``) and ``xmm0``–``xmm15``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import AssemblyError
from .assembler import BaseAssembler
from .model import FLAGS_REGISTER, DecodedInstruction, InstrClass

__all__ = ["X86Assembler", "GP_REGISTERS", "XMM_REGISTERS"]

GP_REGISTERS = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
                "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
XMM_REGISTERS = tuple(f"xmm{i}" for i in range(16))

_GP_SET = frozenset(GP_REGISTERS)
_XMM_SET = frozenset(XMM_REGISTERS)

Decoded = Tuple[DecodedInstruction, Optional[str]]


def _parse_gp(token: str) -> str:
    token = token.strip().lower()
    if token not in _GP_SET:
        raise AssemblyError(f"{token!r} is not a general-purpose register")
    return token


def _parse_xmm(token: str) -> str:
    token = token.strip().lower()
    if token not in _XMM_SET:
        raise AssemblyError(f"{token!r} is not an xmm register")
    return token


def _is_immediate(token: str) -> bool:
    token = token.strip()
    if token.lower().startswith("0x"):
        return True
    return token.lstrip("-").isdigit()


def _parse_immediate(token: str) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AssemblyError(f"{token!r} is not an immediate value") from None


def _is_mem(token: str) -> bool:
    token = token.strip()
    return token.startswith("[") and token.endswith("]")


def _parse_mem(token: str) -> Tuple[str, int]:
    """Parse ``[rbp]``, ``[rbp+8]`` or ``[rbp-8]`` into (base, offset)."""
    inner = token.strip()[1:-1].strip()
    for sign, splitter in ((1, "+"), (-1, "-")):
        if splitter in inner:
            base_text, offset_text = inner.split(splitter, 1)
            return _parse_gp(base_text), sign * _parse_immediate(offset_text)
    return _parse_gp(inner), 0


def _expect(operands: List[str], count: int, opcode: str) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"{opcode} expects {count} operands, got {len(operands)}")


class X86Assembler(BaseAssembler):
    """Assembler for the x86-flavoured syntax."""

    syntax_name = "x86-like"

    def __init__(self) -> None:
        super().__init__()
        h = self.handlers

        for opcode in ("add", "sub", "and", "or", "xor"):
            h[opcode] = self._make_int2(opcode, "alu")
        for opcode in ("shl", "shr", "sar", "rol"):
            h[opcode] = self._make_int2(opcode, "shift")
        h["imul"] = self._make_int2("imul", "mul", InstrClass.INT_LONG)
        h["idiv2"] = self._make_int2("idiv2", "div", InstrClass.INT_LONG)
        h["lea"] = self._lea
        h["mov"] = self._mov
        h["inc"] = self._make_int1("inc")
        h["dec"] = self._make_int1("dec")
        h["cmp"] = self._cmp
        h["test"] = self._cmp_like("test")

        for opcode in ("addps", "subps", "xorps", "orps", "andps"):
            h[opcode] = self._make_xmm2(opcode, "vadd", InstrClass.SIMD)
        h["mulps"] = self._make_xmm2("mulps", "vmul", InstrClass.SIMD)
        h["divps"] = self._make_xmm2("divps", "fdiv", InstrClass.SIMD)
        for opcode in ("addsd", "subsd"):
            h[opcode] = self._make_xmm2(opcode, "fadd", InstrClass.FLOAT)
        h["mulsd"] = self._make_xmm2("mulsd", "fmul", InstrClass.FLOAT)
        h["divsd"] = self._make_xmm2("divsd", "fdiv", InstrClass.FLOAT)
        h["vfmadd231ps"] = self._fma
        h["movaps"] = self._movaps

        h["jmp"] = self._jmp
        for opcode in ("jnz", "jne", "jz", "je", "jg", "jl"):
            h[opcode] = self._make_cond_jump(opcode)

        h["nop"] = self._nop

    # -- integer -----------------------------------------------------------

    def _make_int2(self, opcode: str, group: str,
                   iclass: InstrClass = InstrClass.INT_SHORT):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 2, opcode)
            dst = _parse_gp(operands[0])
            second = operands[1].strip()
            if _is_immediate(second):
                return DecodedInstruction(
                    opcode=opcode, iclass=iclass, group=group,
                    reads=(dst,), writes=(dst, FLAGS_REGISTER),
                    immediate=_parse_immediate(second)), None
            src = _parse_gp(second)
            return DecodedInstruction(
                opcode=opcode, iclass=iclass, group=group,
                reads=(dst, src), writes=(dst, FLAGS_REGISTER)), None
        return handler

    def _make_int1(self, opcode: str):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 1, opcode)
            dst = _parse_gp(operands[0])
            return DecodedInstruction(
                opcode=opcode, iclass=InstrClass.INT_SHORT, group="alu",
                reads=(dst,), writes=(dst, FLAGS_REGISTER)), None
        return handler

    def _lea(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "lea")
        dst = _parse_gp(operands[0])
        if not _is_mem(operands[1]):
            raise AssemblyError("lea needs a memory operand")
        base, offset = _parse_mem(operands[1])
        return DecodedInstruction(
            opcode="lea", iclass=InstrClass.INT_SHORT, group="alu",
            reads=(base,), writes=(dst,), immediate=offset), None

    def _cmp(self, operands: List[str]) -> Decoded:
        return self._cmp_like("cmp")(operands)

    def _cmp_like(self, opcode: str):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 2, opcode)
            first = _parse_gp(operands[0])
            second = operands[1].strip()
            if _is_immediate(second):
                return DecodedInstruction(
                    opcode=opcode, iclass=InstrClass.INT_SHORT, group="alu",
                    reads=(first,), writes=(FLAGS_REGISTER,),
                    immediate=_parse_immediate(second)), None
            return DecodedInstruction(
                opcode=opcode, iclass=InstrClass.INT_SHORT, group="alu",
                reads=(first, _parse_gp(second)),
                writes=(FLAGS_REGISTER,)), None
        return handler

    # -- mov: register move, immediate load, memory load/store ---------------

    def _mov(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "mov")
        dst_text, src_text = operands[0].strip(), operands[1].strip()
        if _is_mem(dst_text):
            base, offset = _parse_mem(dst_text)
            src = _parse_gp(src_text)
            return DecodedInstruction(
                opcode="mov", iclass=InstrClass.MEM_STORE, group="store",
                reads=(src, base), writes=(), mem_base=base,
                mem_offset=offset), None
        dst = _parse_gp(dst_text)
        if _is_mem(src_text):
            base, offset = _parse_mem(src_text)
            return DecodedInstruction(
                opcode="mov", iclass=InstrClass.MEM_LOAD, group="load",
                reads=(base,), writes=(dst,), mem_base=base,
                mem_offset=offset), None
        if _is_immediate(src_text):
            return DecodedInstruction(
                opcode="mov", iclass=InstrClass.INT_SHORT, group="alu",
                reads=(), writes=(dst,),
                immediate=_parse_immediate(src_text)), None
        src = _parse_gp(src_text)
        return DecodedInstruction(
            opcode="mov", iclass=InstrClass.INT_SHORT, group="alu",
            reads=(src,), writes=(dst,)), None

    # -- SSE ------------------------------------------------------------------

    def _make_xmm2(self, opcode: str, group: str, iclass: InstrClass):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 2, opcode)
            dst = _parse_xmm(operands[0])
            src = _parse_xmm(operands[1])
            return DecodedInstruction(
                opcode=opcode, iclass=iclass, group=group,
                reads=(dst, src), writes=(dst,)), None
        return handler

    def _fma(self, operands: List[str]) -> Decoded:
        _expect(operands, 3, "vfmadd231ps")
        dst = _parse_xmm(operands[0])
        src1 = _parse_xmm(operands[1])
        src2 = _parse_xmm(operands[2])
        return DecodedInstruction(
            opcode="vfmadd231ps", iclass=InstrClass.SIMD, group="fma",
            reads=(src1, src2, dst), writes=(dst,)), None

    def _movaps(self, operands: List[str]) -> Decoded:
        """Register move, load or store of an xmm register."""
        _expect(operands, 2, "movaps")
        dst_text, src_text = operands[0].strip(), operands[1].strip()
        if _is_mem(dst_text):
            base, offset = _parse_mem(dst_text)
            return DecodedInstruction(
                opcode="movaps", iclass=InstrClass.MEM_STORE, group="store",
                reads=(_parse_xmm(src_text), base), writes=(),
                mem_base=base, mem_offset=offset), None
        dst = _parse_xmm(dst_text)
        if _is_mem(src_text):
            base, offset = _parse_mem(src_text)
            return DecodedInstruction(
                opcode="movaps", iclass=InstrClass.MEM_LOAD, group="load",
                reads=(base,), writes=(dst,), mem_base=base,
                mem_offset=offset), None
        if _is_immediate(src_text):
            # Pseudo-init form: establish a data pattern in an xmm reg.
            return DecodedInstruction(
                opcode="movaps", iclass=InstrClass.SIMD, group="vadd",
                reads=(), writes=(dst,),
                immediate=_parse_immediate(src_text)), None
        return DecodedInstruction(
            opcode="movaps", iclass=InstrClass.SIMD, group="vadd",
            reads=(_parse_xmm(src_text),), writes=(dst,)), None

    # -- control flow -------------------------------------------------------------

    def _jmp(self, operands: List[str]) -> Decoded:
        _expect(operands, 1, "jmp")
        return DecodedInstruction(
            opcode="jmp", iclass=InstrClass.BRANCH, group="branch",
            reads=()), operands[0].strip()

    def _make_cond_jump(self, opcode: str):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 1, opcode)
            return DecodedInstruction(
                opcode=opcode, iclass=InstrClass.BRANCH, group="branch",
                reads=(FLAGS_REGISTER,)), operands[0].strip()
        return handler

    def _nop(self, operands: List[str]) -> Decoded:
        _expect(operands, 0, "nop")
        return DecodedInstruction(
            opcode="nop", iclass=InstrClass.NOP, group="nop"), None

    # -- init values ---------------------------------------------------------------

    def register_values_from_init(self, init) -> dict:
        values = {}
        for instr in init:
            if instr.opcode in ("mov", "movaps") and instr.writes \
                    and instr.immediate is not None \
                    and not instr.iclass.is_memory:
                values[instr.writes[0]] = instr.immediate
        return values
