"""Two-pass assembler machinery shared by the ARM-like and x86-like
syntax front-ends.

The assembler plays the role of the target machine's toolchain in the
paper's measurement flow: generated source is "compiled" here, and any
malformed instruction (unknown opcode, bad register, out-of-range or
missing operand) raises :class:`AssemblyError` — which the GA engine
converts to a zero-fitness individual, exactly as compile failures are
handled by GeST on real hardware.

Source structure understood by the assembler::

    // comment                      (also ';' comments)
    mov x10, #4096                  init section (runs once)
    .loop                           start of the measured loop
    loop_begin:                     labels end with ':'
        #loop_code-generated body
        subs x0, x0, #1
        bne loop_begin              backward branch = loop edge
    .endloop

Numeric local labels follow GNU as conventions: ``1:`` defines, ``1f``
references the next definition forward, ``1b`` the previous one
backward.  The GA's branch instructions render as ``b 1f`` followed by
``1:`` so every generated branch is a predictable taken branch to the
next instruction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.errors import AssemblyError
from .model import DecodedInstruction, Program

__all__ = ["BaseAssembler", "split_operands"]

_COMMENT_MARKERS = ("//", ";")


def _strip_comment(line: str) -> str:
    for marker in _COMMENT_MARKERS:
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def split_operands(text: str) -> List[str]:
    """Split an operand list on top-level commas, keeping bracketed
    memory operands (``[x10, #8]``) intact."""
    operands: List[str] = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
            current.append(char)
        elif char == "]":
            depth -= 1
            if depth < 0:
                raise AssemblyError(f"unbalanced ']' in operands {text!r}")
            current.append(char)
        elif char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise AssemblyError(f"unbalanced '[' in operands {text!r}")
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return [op for op in operands if op]


class _PendingInstruction:
    """An instruction awaiting label resolution in pass two."""

    __slots__ = ("decoded", "label_ref", "index", "line_number")

    def __init__(self, decoded: DecodedInstruction,
                 label_ref: Optional[str], index: int,
                 line_number: int) -> None:
        self.decoded = decoded
        self.label_ref = label_ref
        self.index = index
        self.line_number = line_number


class BaseAssembler:
    """Shared two-pass assembly driver.

    Subclasses supply :attr:`handlers`, a mapping from lower-case opcode
    to a callable ``handler(operands: List[str]) -> DecodedInstruction``
    that may leave a label reference in ``branch_target_label`` (handled
    via the return tuple).  Handlers raise :class:`AssemblyError` for
    malformed operands.
    """

    #: Human-readable name used in error messages.
    syntax_name = "simisa"

    def __init__(self) -> None:
        self.handlers: Dict[str, Callable[[List[str]],
                                          Tuple[DecodedInstruction,
                                                Optional[str]]]] = {}

    # -- pickling ------------------------------------------------------------
    #
    # The handler table is full of per-opcode closures, which pickle
    # cannot serialise.  It is pure derived state, though: subclasses
    # rebuild it from scratch in their no-argument __init__, so a
    # pickled assembler simply drops the table and reconstructs it on
    # load.  This is what lets measurement objects (which reach an
    # assembler through their simulated machine) replicate into the
    # worker processes of repro.evaluation's ProcessPoolBackend.

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("handlers", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        self.__dict__.update(state)

    # -- front-end hooks -----------------------------------------------------

    def register_values_from_init(
            self, init: List[DecodedInstruction]) -> Dict[str, int]:
        """Derive initial register data values from ``mov reg, #imm``
        style instructions in the init section.  The power model uses
        these for its data-toggle factor; registers not explicitly
        initialised keep the machine's default pattern."""
        values: Dict[str, int] = {}
        for instr in init:
            if instr.opcode in ("mov", "fmov", "vmov") and instr.writes \
                    and instr.immediate is not None:
                values[instr.writes[0]] = instr.immediate
        return values

    # -- assembly ---------------------------------------------------------------

    def assemble(self, source: str, name: str = "<source>") -> Program:
        """Assemble ``source`` into a :class:`Program`.

        Raises :class:`AssemblyError` on the first malformed line.
        """
        sections: Dict[str, List[_PendingInstruction]] = {
            "init": [], "loop": []}
        labels: Dict[str, Tuple[str, int]] = {}
        numeric_labels: List[Tuple[str, str, int]] = []  # (label, section, idx)
        section = "init"
        seen_loop = False
        loop_closed = False

        for line_number, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw)
            if not line:
                continue

            if line.startswith("."):
                directive = line.split()[0].lower()
                if directive == ".loop":
                    if seen_loop:
                        raise AssemblyError("duplicate .loop directive",
                                            line_number, raw)
                    section = "loop"
                    seen_loop = True
                elif directive == ".endloop":
                    if section != "loop":
                        raise AssemblyError(".endloop without .loop",
                                            line_number, raw)
                    section = "done"
                    loop_closed = True
                else:
                    # Other directives (.text, .global, alignment...) are
                    # accepted and ignored, like a real toolchain would.
                    continue
                continue

            # Peel any number of leading labels off the line.
            while True:
                label, remainder = _take_label(line)
                if label is None:
                    break
                if section == "done":
                    raise AssemblyError("label after .endloop",
                                        line_number, raw)
                position = len(sections[section])
                if label.isdigit():
                    numeric_labels.append((label, section, position))
                else:
                    if label in labels:
                        raise AssemblyError(f"duplicate label {label!r}",
                                            line_number, raw)
                    labels[label] = (section, position)
                line = remainder
                if not line:
                    break
            if not line:
                continue

            if section == "done":
                raise AssemblyError("instruction after .endloop",
                                    line_number, raw)

            decoded, label_ref = self._decode_line(line, line_number)
            decoded.source_line = line_number
            decoded.text = line
            pending = _PendingInstruction(decoded, label_ref,
                                          len(sections[section]), line_number)
            sections[section].append(pending)

        if seen_loop and not loop_closed:
            raise AssemblyError(".loop without matching .endloop")
        if seen_loop:
            init = self._resolve(sections["init"], "init", labels,
                                 numeric_labels)
            loop = self._resolve(sections["loop"], "loop", labels,
                                 numeric_labels)
        else:
            # A bare program (no directives) is treated as all-loop; its
            # labels were recorded against the init section, so resolve
            # there.  Keeps ad-hoc snippets and unit tests convenient.
            init = []
            loop = self._resolve(sections["init"], "init", labels,
                                 numeric_labels)

        program = Program(name=name, init=init, loop=loop,
                          labels={k: v[1] for k, v in labels.items()})
        program.register_values = self.register_values_from_init(init)
        # Warm the dependence summary here, in the toolchain front-end,
        # so the static cost model's ranking path never pays a
        # per-instruction pass (see Program.dependence_summary).
        program.dependence_summary()
        return program

    # -- internals -----------------------------------------------------------------

    def _decode_line(self, line: str, line_number: int
                     ) -> Tuple[DecodedInstruction, Optional[str]]:
        parts = line.split(None, 1)
        opcode = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        handler = self.handlers.get(opcode)
        if handler is None:
            raise AssemblyError(
                f"unknown {self.syntax_name} opcode {opcode!r}",
                line_number, line)
        try:
            return handler(split_operands(operand_text))
        except AssemblyError as exc:
            raise AssemblyError(f"{exc} (in {line!r})", line_number) from None

    def _resolve(self, pending: List[_PendingInstruction], section: str,
                 labels: Dict[str, Tuple[str, int]],
                 numeric_labels: List[Tuple[str, str, int]]
                 ) -> List[DecodedInstruction]:
        resolved: List[DecodedInstruction] = []
        for item in pending:
            decoded = item.decoded
            if item.label_ref is not None:
                target = self._resolve_label(item.label_ref, section,
                                             item.index, labels,
                                             numeric_labels,
                                             item.line_number)
                decoded.branch_target = target
                decoded.backward = target <= item.index
            resolved.append(decoded)
        return resolved

    def _resolve_label(self, ref: str, section: str, index: int,
                       labels: Dict[str, Tuple[str, int]],
                       numeric_labels: List[Tuple[str, str, int]],
                       line_number: int) -> int:
        if ref and ref[:-1].isdigit() and ref[-1] in "fb":
            number, direction = ref[:-1], ref[-1]
            candidates = [pos for (label, sec, pos) in numeric_labels
                          if label == number and sec == section]
            if direction == "f":
                forward = [pos for pos in candidates if pos > index]
                if forward:
                    return min(forward)
                # A trailing "1:" label with nothing after it points just
                # past the last instruction: treat as fall-through.
                trailing = [pos for pos in candidates if pos == index + 1]
                if trailing:
                    return index + 1
                raise AssemblyError(
                    f"no forward label {number!r} after instruction",
                    line_number)
            backward = [pos for pos in candidates if pos <= index]
            if backward:
                return max(backward)
            raise AssemblyError(
                f"no backward label {number!r} before instruction",
                line_number)

        entry = labels.get(ref)
        if entry is None:
            raise AssemblyError(f"undefined label {ref!r}", line_number)
        label_section, position = entry
        if label_section != section:
            # A loop-body branch to a label defined in the init section is
            # only legal if it names the loop entry (the classic
            # decrement-and-branch pattern); map it to loop index 0.
            if section == "loop" and label_section == "init":
                return 0
            raise AssemblyError(
                f"label {ref!r} crosses section boundary", line_number)
        return position


def _take_label(line: str) -> Tuple[Optional[str], str]:
    """If ``line`` starts with ``label:``, return (label, rest)."""
    colon = line.find(":")
    if colon <= 0:
        return None, line
    candidate = line[:colon].strip()
    if not candidate or any(ch.isspace() for ch in candidate):
        return None, line
    if not all(ch.isalnum() or ch in "._$" for ch in candidate):
        return None, line
    return candidate, line[colon + 1:].strip()
