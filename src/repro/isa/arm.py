"""ARM-flavoured SimISA syntax front-end.

Covers the instruction shapes used by the paper's ARM experiments
(Cortex-A15, Cortex-A7, X-Gene2): three-operand integer ALU ops,
multi-cycle integer multiply/divide, scalar float and SIMD vector ops,
loads/stores with base+immediate addressing (including pair forms LDP/
STP), compare/conditional branches and the ``b 1f`` / ``1:`` predictable
branch idiom used inside GA loops.

Register files: ``x0``–``x15`` integer, ``v0``–``v15`` vector/float.
Immediates accept decimal and ``0x`` hex with an optional leading ``#``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import AssemblyError
from .assembler import BaseAssembler
from .model import (FLAGS_REGISTER, INT_REGISTER_COUNT, VEC_REGISTER_COUNT,
                    DecodedInstruction, InstrClass)

__all__ = ["ArmAssembler", "INT_REGISTERS", "VEC_REGISTERS"]

INT_REGISTERS = tuple(f"x{i}" for i in range(INT_REGISTER_COUNT))
VEC_REGISTERS = tuple(f"v{i}" for i in range(VEC_REGISTER_COUNT))

_INT_SET = frozenset(INT_REGISTERS)
_VEC_SET = frozenset(VEC_REGISTERS)

Decoded = Tuple[DecodedInstruction, Optional[str]]


def _parse_int_reg(token: str) -> str:
    token = token.strip().lower()
    if token not in _INT_SET:
        raise AssemblyError(f"{token!r} is not an integer register")
    return token


def _parse_vec_reg(token: str) -> str:
    token = token.strip().lower()
    # Tolerate lane-qualified forms like v3.4s.
    base = token.split(".")[0]
    if base not in _VEC_SET:
        raise AssemblyError(f"{token!r} is not a vector register")
    return base


def _parse_immediate(token: str) -> int:
    token = token.strip()
    if token.startswith("#"):
        token = token[1:]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"{token!r} is not an immediate value") from None


def _parse_mem(token: str) -> Tuple[str, int]:
    """Parse ``[x10]`` or ``[x10, #8]`` into (base, offset)."""
    token = token.strip()
    if not (token.startswith("[") and token.endswith("]")):
        raise AssemblyError(f"{token!r} is not a memory operand")
    inner = token[1:-1].strip()
    if "," in inner:
        base_text, offset_text = inner.split(",", 1)
        return _parse_int_reg(base_text), _parse_immediate(offset_text)
    return _parse_int_reg(inner), 0


def _expect(operands: List[str], count: int, opcode: str) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"{opcode} expects {count} operands, got {len(operands)}")


class ArmAssembler(BaseAssembler):
    """Assembler for the ARM-flavoured syntax."""

    syntax_name = "arm-like"

    def __init__(self) -> None:
        super().__init__()
        h = self.handlers

        for opcode in ("add", "sub", "and", "orr", "eor", "bic"):
            h[opcode] = self._make_int3(opcode, "alu")
        for opcode in ("lsl", "lsr", "asr", "ror"):
            h[opcode] = self._make_int3(opcode, "shift")
        h["mul"] = self._make_int3("mul", "mul", InstrClass.INT_LONG)
        h["madd"] = self._make_mla("madd")
        h["mla"] = self._make_mla("mla")
        h["sdiv"] = self._make_int3("sdiv", "div", InstrClass.INT_LONG)
        h["udiv"] = self._make_int3("udiv", "div", InstrClass.INT_LONG)
        h["subs"] = self._subs
        h["adds"] = self._adds
        h["cmp"] = self._cmp
        h["mov"] = self._mov
        h["movk"] = self._movk

        for opcode in ("fadd", "fsub"):
            h[opcode] = self._make_vec3(opcode, "fadd", InstrClass.FLOAT)
        h["fmul"] = self._make_vec3("fmul", "fmul", InstrClass.FLOAT)
        h["fdiv"] = self._make_vec3("fdiv", "fdiv", InstrClass.FLOAT)
        h["fmla"] = self._make_vfma("fmla", InstrClass.FLOAT)
        h["fmov"] = self._fmov

        for opcode in ("vadd", "vsub", "veor", "vorr", "vand"):
            h[opcode] = self._make_vec3(opcode, "vadd", InstrClass.SIMD)
        h["vmul"] = self._make_vec3("vmul", "vmul", InstrClass.SIMD)
        h["vfma"] = self._make_vfma("vfma", InstrClass.SIMD)

        h["ldr"] = self._ldr
        h["str"] = self._str
        h["ldp"] = self._ldp
        h["stp"] = self._stp

        h["b"] = self._branch_unconditional
        for opcode in ("bne", "beq", "bgt", "blt", "bge", "ble"):
            h[opcode] = self._make_cond_branch(opcode)
        h["cbnz"] = self._make_reg_branch("cbnz")
        h["cbz"] = self._make_reg_branch("cbz")

        h["nop"] = self._nop

    # -- integer ---------------------------------------------------------

    def _make_int3(self, opcode: str, group: str,
                   iclass: InstrClass = InstrClass.INT_SHORT):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 3, opcode)
            dst = _parse_int_reg(operands[0])
            src1 = _parse_int_reg(operands[1])
            imm = None
            reads = [src1]
            third = operands[2].strip()
            if third.startswith("#") or third.lstrip("-").isdigit():
                imm = _parse_immediate(third)
            else:
                reads.append(_parse_int_reg(third))
            return DecodedInstruction(
                opcode=opcode, iclass=iclass, group=group,
                reads=tuple(reads), writes=(dst,), immediate=imm), None
        return handler

    def _make_mla(self, opcode: str):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 4, opcode)
            dst = _parse_int_reg(operands[0])
            reads = tuple(_parse_int_reg(op) for op in operands[1:])
            return DecodedInstruction(
                opcode=opcode, iclass=InstrClass.INT_LONG, group="mul",
                reads=reads, writes=(dst,)), None
        return handler

    def _subs(self, operands: List[str]) -> Decoded:
        decoded, _ = self._make_int3("subs", "alu")(operands)
        decoded.writes = decoded.writes + (FLAGS_REGISTER,)
        return decoded, None

    def _adds(self, operands: List[str]) -> Decoded:
        decoded, _ = self._make_int3("adds", "alu")(operands)
        decoded.writes = decoded.writes + (FLAGS_REGISTER,)
        return decoded, None

    def _cmp(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "cmp")
        src1 = _parse_int_reg(operands[0])
        reads = [src1]
        imm = None
        second = operands[1].strip()
        if second.startswith("#") or second.lstrip("-").isdigit():
            imm = _parse_immediate(second)
        else:
            reads.append(_parse_int_reg(second))
        return DecodedInstruction(
            opcode="cmp", iclass=InstrClass.INT_SHORT, group="alu",
            reads=tuple(reads), writes=(FLAGS_REGISTER,),
            immediate=imm), None

    def _mov(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "mov")
        dst = _parse_int_reg(operands[0])
        second = operands[1].strip()
        if second.startswith("#") or second.lstrip("-").isdigit() \
                or second.lower().startswith("0x"):
            imm = _parse_immediate(second)
            return DecodedInstruction(
                opcode="mov", iclass=InstrClass.INT_SHORT, group="alu",
                reads=(), writes=(dst,), immediate=imm), None
        src = _parse_int_reg(second)
        return DecodedInstruction(
            opcode="mov", iclass=InstrClass.INT_SHORT, group="alu",
            reads=(src,), writes=(dst,)), None

    def _movk(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "movk")
        dst = _parse_int_reg(operands[0])
        imm = _parse_immediate(operands[1])
        return DecodedInstruction(
            opcode="movk", iclass=InstrClass.INT_SHORT, group="alu",
            reads=(dst,), writes=(dst,), immediate=imm), None

    # -- float / SIMD -------------------------------------------------------

    def _make_vec3(self, opcode: str, group: str, iclass: InstrClass):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 3, opcode)
            dst = _parse_vec_reg(operands[0])
            reads = tuple(_parse_vec_reg(op) for op in operands[1:])
            return DecodedInstruction(
                opcode=opcode, iclass=iclass, group=group,
                reads=reads, writes=(dst,)), None
        return handler

    def _make_vfma(self, opcode: str, iclass: InstrClass):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 3, opcode)
            dst = _parse_vec_reg(operands[0])
            srcs = tuple(_parse_vec_reg(op) for op in operands[1:])
            # Fused multiply-accumulate also reads its destination.
            return DecodedInstruction(
                opcode=opcode, iclass=iclass, group="fma",
                reads=srcs + (dst,), writes=(dst,)), None
        return handler

    def _fmov(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "fmov")
        dst = _parse_vec_reg(operands[0])
        second = operands[1].strip()
        if second.startswith("#") or second.lower().startswith("0x") \
                or second.lstrip("-").isdigit():
            imm = _parse_immediate(second)
            return DecodedInstruction(
                opcode="fmov", iclass=InstrClass.FLOAT, group="fadd",
                reads=(), writes=(dst,), immediate=imm), None
        if second.lower() in _INT_SET:
            return DecodedInstruction(
                opcode="fmov", iclass=InstrClass.FLOAT, group="fadd",
                reads=(second.lower(),), writes=(dst,)), None
        src = _parse_vec_reg(second)
        return DecodedInstruction(
            opcode="fmov", iclass=InstrClass.FLOAT, group="fadd",
            reads=(src,), writes=(dst,)), None

    # -- memory ------------------------------------------------------------

    def _reg_any(self, token: str) -> str:
        token = token.strip().lower()
        if token in _INT_SET:
            return token
        return _parse_vec_reg(token)

    def _ldr(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "ldr")
        dst = self._reg_any(operands[0])
        base, offset = _parse_mem(operands[1])
        return DecodedInstruction(
            opcode="ldr", iclass=InstrClass.MEM_LOAD, group="load",
            reads=(base,), writes=(dst,), mem_base=base,
            mem_offset=offset), None

    def _str(self, operands: List[str]) -> Decoded:
        _expect(operands, 2, "str")
        src = self._reg_any(operands[0])
        base, offset = _parse_mem(operands[1])
        return DecodedInstruction(
            opcode="str", iclass=InstrClass.MEM_STORE, group="store",
            reads=(src, base), writes=(), mem_base=base,
            mem_offset=offset), None

    def _ldp(self, operands: List[str]) -> Decoded:
        _expect(operands, 3, "ldp")
        dst1 = self._reg_any(operands[0])
        dst2 = self._reg_any(operands[1])
        if dst1 == dst2:
            raise AssemblyError("ldp destinations must differ")
        base, offset = _parse_mem(operands[2])
        return DecodedInstruction(
            opcode="ldp", iclass=InstrClass.MEM_LOAD, group="load_pair",
            reads=(base,), writes=(dst1, dst2), mem_base=base,
            mem_offset=offset), None

    def _stp(self, operands: List[str]) -> Decoded:
        _expect(operands, 3, "stp")
        src1 = self._reg_any(operands[0])
        src2 = self._reg_any(operands[1])
        base, offset = _parse_mem(operands[2])
        return DecodedInstruction(
            opcode="stp", iclass=InstrClass.MEM_STORE, group="store_pair",
            reads=(src1, src2, base), writes=(), mem_base=base,
            mem_offset=offset), None

    # -- branches ------------------------------------------------------------

    def _branch_unconditional(self, operands: List[str]) -> Decoded:
        _expect(operands, 1, "b")
        return DecodedInstruction(
            opcode="b", iclass=InstrClass.BRANCH, group="branch",
            reads=()), operands[0].strip()

    def _make_cond_branch(self, opcode: str):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 1, opcode)
            return DecodedInstruction(
                opcode=opcode, iclass=InstrClass.BRANCH, group="branch",
                reads=(FLAGS_REGISTER,)), operands[0].strip()
        return handler

    def _make_reg_branch(self, opcode: str):
        def handler(operands: List[str]) -> Decoded:
            _expect(operands, 2, opcode)
            reg = _parse_int_reg(operands[0])
            return DecodedInstruction(
                opcode=opcode, iclass=InstrClass.BRANCH, group="branch",
                reads=(reg,)), operands[1].strip()
        return handler

    def _nop(self, operands: List[str]) -> Decoded:
        _expect(operands, 0, "nop")
        return DecodedInstruction(
            opcode="nop", iclass=InstrClass.NOP, group="nop"), None
