"""Splice compilation: assemble a template once, re-decode only bodies.

Every individual in a generation renders into the *same* template —
only the loop-body lines between the template's fixed prefix and suffix
differ.  The full two-pass assembler re-parses the whole source every
time, which at generation scale means re-assembling the identical init
section and loop scaffolding population-many times per generation.

:class:`TemplateSplicer` exploits that structure: it assembles the
first rendered source in full, splits the resulting
:class:`~repro.isa.model.Program` into the template-owned parts (init
section, loop prefix before the insertion point, loop suffix after it)
and, for every later source, decodes only the body lines — with a
per-line memo, since GA populations repeat library renderings heavily —
and splices them between the shared template parts.

Safety model
------------
The splicer is *self-validating*: for every distinct body shape (line
count, instruction count) the first source is compiled both ways and
the resulting Programs compared for equality; any mismatch permanently
deactivates splicing, falling back to the full assembler.  Sources that
do not textually match the template's rendered prefix/suffix, bodies
that define or reference non-numeric labels, and templates using
numeric labels in their own loop section all take the full-assembler
path as well.  Numeric-label resolution inside a body is exactly the
assembler's (forward/backward/trailing rules); a body branch that the
local resolution cannot satisfy falls back to the full assembler so
genuine assembly errors keep their original diagnostics.
"""

from __future__ import annotations

import copy
import re
from typing import Dict, List, Optional, Tuple

from ..core.errors import AssemblyError
from ..core.template import LOOP_MARKER, Template
from .assembler import BaseAssembler, _strip_comment, _take_label, \
    split_operands
from .model import DecodedInstruction, Program

__all__ = ["TemplateSplicer"]

#: Operand token that references a GNU-as numeric label (``1f`` / ``2b``).
_NUMERIC_REF = re.compile(r"^\d+[fb]$")


class TemplateSplicer:
    """Compile template-rendered sources by splicing decoded bodies.

    ``compile(source, name)`` is a drop-in replacement for
    ``assembler.assemble(source, name)`` for sources produced by
    ``template.instantiate``; any source it cannot handle (or any
    validation failure) silently takes the full-assembler path, so the
    result is always exactly what the assembler would produce.
    """

    def __init__(self, template: Template,
                 assembler: BaseAssembler) -> None:
        self.assembler = assembler
        self.template = template
        #: Permanently disabled after any validation mismatch.
        self.active = True
        #: Diagnostics: how many compiles went through each path.
        self.spliced = 0
        self.full_assemblies = 0

        lines = template.text.splitlines()
        marker_at = next(
            (i for i, line in enumerate(lines)
             if line.strip() == LOOP_MARKER), None)
        if marker_at is None:  # Template() already rejects this
            self.active = False
            self._prefix_lines: List[str] = []
            self._suffix_lines: List[str] = []
            return
        self._prefix_lines = lines[:marker_at]
        self._suffix_lines = lines[marker_at + 1:]
        # Loop-section instruction lines in the template prefix — the
        # decoded loop index at which body instructions are inserted.
        self._loop_prefix_len = _loop_instruction_count(self._prefix_lines)
        #: Named labels defined in the template's loop suffix: their
        #: decoded positions shift with the body length.
        self._suffix_label_names = _section_label_names(self._suffix_lines)
        if _uses_numeric_labels(self._prefix_lines + self._suffix_lines):
            # Template-owned numeric labels could capture or shadow the
            # body's local numeric references; splicing would need the
            # global two-pass view, so don't attempt it.
            self.active = False

        #: Decoded-instruction memo keyed on the stripped body line.
        self._line_memo: Dict[str, Tuple[DecodedInstruction,
                                         Optional[str]]] = {}
        #: Template parts captured from the first full assemble.
        self._parts: Optional[dict] = None
        #: Body shapes (line count, instruction count) already validated
        #: against the full assembler.
        self._validated: set = set()

    # -- public API ----------------------------------------------------------

    def compile(self, source: str, name: str = "stress.s") -> Program:
        """Assemble ``source``, splicing when it matches the template."""
        if not self.active:
            return self._full(source, name)
        body = self._match(source)
        if body is None:
            return self._full(source, name)
        try:
            spliced = self._splice(source, body, name)
        except AssemblyError:
            # Local resolution could not satisfy the body (dangling
            # numeric reference, unknown opcode...): let the full
            # assembler produce the authoritative result/diagnostic.
            return self._full(source, name)
        if spliced is None:
            return self._full(source, name)
        shape = (len(body), len(spliced.loop))
        if shape not in self._validated:
            reference = self._full(source, name)
            if not _programs_equal(spliced, reference):
                self.active = False
            else:
                self._validated.add(shape)
            return reference
        self.spliced += 1
        return spliced

    # -- internals -----------------------------------------------------------

    def _full(self, source: str, name: str) -> Program:
        self.full_assemblies += 1
        return self.assembler.assemble(source, name=name)

    def _match(self, source: str) -> Optional[List[str]]:
        """Extract the body lines if ``source`` renders this template."""
        lines = source.splitlines()
        n_pre = len(self._prefix_lines)
        n_suf = len(self._suffix_lines)
        if len(lines) < n_pre + n_suf:
            return None
        if lines[:n_pre] != self._prefix_lines:
            return None
        if n_suf and lines[len(lines) - n_suf:] != self._suffix_lines:
            return None
        return lines[n_pre:len(lines) - n_suf]

    def _splice(self, source: str, body_lines: List[str],
                name: str) -> Optional[Program]:
        parts = self._parts
        if parts is None:
            parts = self._capture_parts(source, body_lines, name)
            if parts is None:
                return None
            self._parts = parts

        n_pre = len(self._prefix_lines)
        # Decode the body: peel numeric labels, memoised per line text.
        instrs: List[DecodedInstruction] = []
        pending: List[Tuple[int, str, int]] = []  # (index, ref, line_no)
        label_positions: Dict[str, List[int]] = {}
        for offset, raw in enumerate(body_lines):
            line = _strip_comment(raw)
            if not line:
                continue
            line_number = n_pre + offset + 1
            if line.startswith("."):
                return None  # directives inside a body: full path
            while True:
                label, remainder = _take_label(line)
                if label is None:
                    break
                if not label.isdigit():
                    return None  # named label in a body: full path
                label_positions.setdefault(label, []).append(len(instrs))
                line = remainder
                if not line:
                    break
            if not line:
                continue
            memo = self._line_memo.get(line)
            if memo is None:
                memo = self.assembler._decode_line(line, line_number)
                self._line_memo[line] = memo
            proto, label_ref = memo
            instr = copy.copy(proto)
            instr.source_line = line_number
            instr.text = line
            if label_ref is not None:
                if not _NUMERIC_REF.match(label_ref):
                    return None  # named branch target: full path
                pending.append((len(instrs), label_ref, line_number))
            instrs.append(instr)

        base = parts["loop_prefix_len"]
        for index, ref, line_number in pending:
            target = _resolve_numeric(ref, index, label_positions,
                                      line_number)
            instr = instrs[index]
            instr.branch_target = base + target
            instr.backward = target <= index

        shift_lines = len(body_lines) - parts["body_line_count"]
        shift_instrs = len(instrs) - parts["body_instr_count"]
        if shift_lines == 0 and shift_instrs == 0:
            suffix = parts["suffix"]
            labels = parts["labels"]
        else:
            suffix = []
            for instr in parts["suffix"]:
                moved = copy.copy(instr)
                moved.source_line += shift_lines
                suffix.append(moved)
            labels = dict(parts["labels"])
            for label_name in self._suffix_label_names:
                if label_name in labels:
                    labels[label_name] += shift_instrs
        program = Program(
            name=name,
            init=parts["init"],
            loop=parts["prefix"] + instrs + suffix,
            labels=dict(labels))
        program.register_values = dict(parts["register_values"])
        return program

    def _capture_parts(self, source: str, body_lines: List[str],
                       name: str) -> Optional[dict]:
        """Split the first full assemble into template-owned pieces."""
        reference = self._full(source, name)
        body_instr_count = _instruction_count(body_lines)
        loop_prefix_len = self._loop_prefix_len
        suffix_start = loop_prefix_len + body_instr_count
        if suffix_start > len(reference.loop):
            return None
        return {
            "init": reference.init,
            "prefix": reference.loop[:loop_prefix_len],
            "suffix": reference.loop[suffix_start:],
            "labels": dict(reference.labels),
            "register_values": dict(reference.register_values),
            "loop_prefix_len": loop_prefix_len,
            "body_line_count": len(body_lines),
            "body_instr_count": body_instr_count,
        }


# -- helpers -----------------------------------------------------------------


def _resolve_numeric(ref: str, index: int,
                     positions: Dict[str, List[int]],
                     line_number: int) -> int:
    """Body-local GNU-as numeric label resolution (assembler semantics)."""
    number, direction = ref[:-1], ref[-1]
    candidates = positions.get(number, [])
    if direction == "f":
        forward = [pos for pos in candidates if pos > index]
        if forward:
            return min(forward)
        if index + 1 in candidates:
            return index + 1
        raise AssemblyError(
            f"no forward label {number!r} after instruction", line_number)
    backward = [pos for pos in candidates if pos <= index]
    if backward:
        return max(backward)
    raise AssemblyError(
        f"no backward label {number!r} before instruction", line_number)


def _instruction_count(lines: List[str]) -> int:
    """Count instruction lines (labels peeled, comments/directives
    skipped — mirrors the assembler's line classification)."""
    count = 0
    for raw in lines:
        line = _strip_comment(raw)
        if not line or line.startswith("."):
            continue
        while True:
            label, remainder = _take_label(line)
            if label is None:
                break
            line = remainder
            if not line:
                break
        if line:
            count += 1
    return count


def _loop_instruction_count(lines: List[str]) -> int:
    """Count instruction lines inside the ``.loop`` section of ``lines``."""
    in_loop: List[str] = []
    active = False
    for raw in lines:
        line = _strip_comment(raw)
        if line.startswith("."):
            directive = line.split()[0].lower()
            if directive == ".loop":
                active = True
            elif directive == ".endloop":
                active = False
            continue
        if active and line:
            in_loop.append(line)
    return _instruction_count(in_loop)


def _section_label_names(lines: List[str]) -> List[str]:
    """Named labels defined anywhere in ``lines``."""
    names: List[str] = []
    for raw in lines:
        line = _strip_comment(raw)
        while line:
            label, remainder = _take_label(line)
            if label is None:
                break
            if not label.isdigit():
                names.append(label)
            line = remainder
    return names


def _uses_numeric_labels(lines: List[str]) -> bool:
    """True if any line defines or references a numeric label."""
    for raw in lines:
        line = _strip_comment(raw)
        while line:
            label, remainder = _take_label(line)
            if label is None:
                break
            if label.isdigit():
                return True
            line = remainder
        if not line:
            continue
        parts = line.split(None, 1)
        if len(parts) > 1:
            for operand in split_operands(parts[1]):
                if _NUMERIC_REF.match(operand):
                    return True
    return False


def _programs_equal(left: Program, right: Program) -> bool:
    """Dataclass equality (``_dependence_summary`` is excluded by its
    field definition, so lazily-warmed caches do not affect this)."""
    return left == right
