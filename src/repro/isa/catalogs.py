"""Stock instruction libraries and templates for the GA search.

The paper's framework release "includes measurement scripts and fitness
functions that can be used for power, IPC, dI/dt noise and
instruction-stream simplicity optimization for x86 and ARM ISA"; this
module is the analogous battery of ready-made instruction/operand
definitions (Figure 4 style) and template source files for both SimISA
syntaxes.

Register conventions baked into the stock templates:

========  ===========================  ===========================
role      ARM-like                     x86-like
========  ===========================  ===========================
counter   ``x0``                       ``r15``
mem base  ``x10``, ``x11``             ``rbp``, ``r8``
int pool  ``x1``–``x6``                ``rax rbx rcx rdx rsi rdi``
mem dst   ``x7``–``x9``                ``r9 r10 r11``
vec pool  ``v0``–``v15``               ``xmm0``–``xmm15``
========  ===========================  ===========================

Load results land in a register pool disjoint from the integer-op pool
— the paper's own trick for keeping short-latency integer instructions
off the critical path of memory loads.

Integer registers are initialised with checkerboard patterns
(``0xAAAA...``/``0x5555...``) because, as the paper reports, they
maximise bit switching and therefore power (see the register-init
ablation benchmark).
"""

from __future__ import annotations

from typing import Optional

from ..core.instruction import InstructionLibrary, InstructionSpec
from ..core.operand import ImmediateOperand, RegisterOperand

__all__ = [
    "arm_library", "x86_library", "library_for",
    "arm_template", "x86_template", "template_for",
    "CHECKERBOARD_A", "CHECKERBOARD_5",
]

CHECKERBOARD_A = 0xAAAAAAAAAAAAAAAA
CHECKERBOARD_5 = 0x5555555555555555


# ---------------------------------------------------------------------------
# ARM-like catalog
# ---------------------------------------------------------------------------

def arm_library(max_offset: int = 256, offset_stride: int = 8,
                include_nop: bool = True) -> InstructionLibrary:
    """The stock ARM-flavoured GA search set.

    ~20 instruction definitions spanning all five of the paper's
    instruction categories.  ``max_offset``/``offset_stride`` control
    the memory-offset immediate pool (Figure 4 uses 0..256 stride 8,
    giving the LDR its "99 possible forms").
    """
    operands = [
        RegisterOperand("int_dst", ["x1", "x2", "x3", "x4", "x5", "x6"]),
        RegisterOperand("int_src", ["x1", "x2", "x3", "x4", "x5", "x6"]),
        RegisterOperand("mem_result", ["x7", "x8", "x9"]),
        RegisterOperand("pair_result1", ["x7"]),
        RegisterOperand("pair_result2", ["x8"]),
        RegisterOperand("mem_address_register", ["x10", "x11"]),
        ImmediateOperand("mem_offset", 0, max_offset, offset_stride),
        ImmediateOperand("shift_amount", 1, 31, 2),
        RegisterOperand("vec_dst", [f"v{i}" for i in range(16)]),
        RegisterOperand("vec_src", [f"v{i}" for i in range(16)]),
    ]

    def int3(name: str, mnemonic: Optional[str] = None,
             itype: str = "int_short") -> InstructionSpec:
        mnemonic = mnemonic or name.lower()
        return InstructionSpec(name, ["int_dst", "int_src", "int_src"],
                               f"{mnemonic} op1, op2, op3", itype)

    def vec3(name: str, mnemonic: Optional[str] = None,
             itype: str = "simd") -> InstructionSpec:
        mnemonic = mnemonic or name.lower()
        return InstructionSpec(name, ["vec_dst", "vec_src", "vec_src"],
                               f"{mnemonic} op1, op2, op3", itype)

    instructions = [
        int3("ADD"), int3("SUB"), int3("EOR"), int3("ORR"),
        InstructionSpec("LSL", ["int_dst", "int_src", "shift_amount"],
                        "lsl op1, op2, #op3", "int_short"),
        int3("MUL", itype="int_long"),
        InstructionSpec("MLA", ["int_dst", "int_src", "int_src", "int_src"],
                        "mla op1, op2, op3, op4", "int_long"),
        int3("SDIV", itype="int_long"),
        vec3("FADD", itype="float"), vec3("FMUL", itype="float"),
        vec3("FMLA", itype="float"),
        vec3("VADD"), vec3("VMUL"), vec3("VEOR"), vec3("VFMA"),
        InstructionSpec("LDR", ["mem_result", "mem_address_register",
                                "mem_offset"],
                        "ldr op1, [op2, #op3]", "mem"),
        InstructionSpec("LDRV", ["vec_dst", "mem_address_register",
                                 "mem_offset"],
                        "ldr op1, [op2, #op3]", "mem"),
        InstructionSpec("STR", ["int_src", "mem_address_register",
                                "mem_offset"],
                        "str op1, [op2, #op3]", "mem"),
        InstructionSpec("STRV", ["vec_src", "mem_address_register",
                                 "mem_offset"],
                        "str op1, [op2, #op3]", "mem"),
        InstructionSpec("LDP", ["pair_result1", "pair_result2",
                                "mem_address_register", "mem_offset"],
                        "ldp op1, op2, [op3, #op4]", "mem"),
        InstructionSpec("STP", ["int_src", "int_src",
                                "mem_address_register", "mem_offset"],
                        "stp op1, op2, [op3, #op4]", "mem"),
        InstructionSpec("B", [], "b 1f\n1:", "branch"),
        InstructionSpec("CBNZ", ["int_src"], "cbnz op1, 1f\n1:", "branch"),
    ]
    if include_nop:
        instructions.append(InstructionSpec("NOP", [], "nop", "nop"))
    return InstructionLibrary(operands, instructions)


def arm_template(iterations: int = 1_000_000,
                 checkerboard: bool = True) -> str:
    """The stock ARM-flavoured template source (paper III.B.2).

    Initialises the loop counter, two memory base registers and the
    whole integer/vector pools, then declares the measured loop with
    the ``#loop_code`` marker and a decrement-and-branch loop edge.
    """
    pattern_a = CHECKERBOARD_A if checkerboard else 0
    pattern_5 = CHECKERBOARD_5 if checkerboard else 0
    lines = [
        "// GeST-repro stock ARM-like template",
        f"mov x0, #{iterations}",
        "mov x10, #4096",
        "mov x11, #8192",
    ]
    for i in range(1, 10):
        pattern = pattern_a if i % 2 else pattern_5
        lines.append(f"mov x{i}, #{hex(pattern)}")
    for i in range(16):
        pattern = pattern_a if i % 2 else pattern_5
        lines.append(f"fmov v{i}, #{hex(pattern)}")
    lines += [
        ".loop",
        "loop_begin:",
        "#loop_code",
        "subs x0, x0, #1",
        "bne loop_begin",
        ".endloop",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# x86-like catalog
# ---------------------------------------------------------------------------

def x86_library(max_offset: int = 256, offset_stride: int = 8,
                include_nop: bool = True) -> InstructionLibrary:
    """The stock x86-flavoured GA search set (two-operand forms)."""
    operands = [
        RegisterOperand("int_dst",
                        ["rax", "rbx", "rcx", "rdx", "rsi", "rdi"]),
        RegisterOperand("int_src",
                        ["rax", "rbx", "rcx", "rdx", "rsi", "rdi"]),
        RegisterOperand("mem_result", ["r9", "r10", "r11"]),
        RegisterOperand("mem_address_register", ["rbp", "r8"]),
        ImmediateOperand("mem_offset", 0, max_offset, offset_stride),
        ImmediateOperand("shift_amount", 1, 31, 2),
        RegisterOperand("xmm_dst", [f"xmm{i}" for i in range(16)]),
        RegisterOperand("xmm_src", [f"xmm{i}" for i in range(16)]),
    ]

    def int2(name: str, mnemonic: Optional[str] = None,
             itype: str = "int_short") -> InstructionSpec:
        mnemonic = mnemonic or name.lower()
        return InstructionSpec(name, ["int_dst", "int_src"],
                               f"{mnemonic} op1, op2", itype)

    def xmm2(name: str, mnemonic: Optional[str] = None,
             itype: str = "simd") -> InstructionSpec:
        mnemonic = mnemonic or name.lower()
        return InstructionSpec(name, ["xmm_dst", "xmm_src"],
                               f"{mnemonic} op1, op2", itype)

    instructions = [
        int2("ADD"), int2("SUB"), int2("XOR"), int2("OR"),
        InstructionSpec("SHL", ["int_dst", "shift_amount"],
                        "shl op1, op2", "int_short"),
        int2("IMUL", itype="int_long"),
        int2("IDIV", "idiv2", itype="int_long"),
        xmm2("ADDPS"), xmm2("MULPS"), xmm2("XORPS"),
        xmm2("ADDSD", itype="float"), xmm2("MULSD", itype="float"),
        InstructionSpec("VFMA", ["xmm_dst", "xmm_src", "xmm_src"],
                        "vfmadd231ps op1, op2, op3", "simd"),
        InstructionSpec("LOAD", ["mem_result", "mem_address_register",
                                 "mem_offset"],
                        "mov op1, [op2+op3]", "mem"),
        InstructionSpec("STORE", ["mem_address_register", "mem_offset",
                                  "int_src"],
                        "mov [op1+op2], op3", "mem"),
        InstructionSpec("LOADPS", ["xmm_dst", "mem_address_register",
                                   "mem_offset"],
                        "movaps op1, [op2+op3]", "mem"),
        InstructionSpec("STOREPS", ["mem_address_register", "mem_offset",
                                    "xmm_src"],
                        "movaps [op1+op2], op3", "mem"),
        InstructionSpec("JMP", [], "jmp 1f\n1:", "branch"),
    ]
    if include_nop:
        instructions.append(InstructionSpec("NOP", [], "nop", "nop"))
    return InstructionLibrary(operands, instructions)


def x86_template(iterations: int = 1_000_000,
                 checkerboard: bool = True) -> str:
    """The stock x86-flavoured template source."""
    pattern_a = CHECKERBOARD_A if checkerboard else 0
    pattern_5 = CHECKERBOARD_5 if checkerboard else 0
    gp_pool = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi",
               "r9", "r10", "r11"]
    lines = [
        "// GeST-repro stock x86-like template",
        f"mov r15, {iterations}",
        "mov rbp, 4096",
        "mov r8, 8192",
    ]
    for index, reg in enumerate(gp_pool):
        pattern = pattern_a if index % 2 else pattern_5
        lines.append(f"mov {reg}, {hex(pattern)}")
    for i in range(16):
        pattern = pattern_a if i % 2 else pattern_5
        lines.append(f"movaps xmm{i}, {hex(pattern)}")
    lines += [
        ".loop",
        "loop_begin:",
        "#loop_code",
        "dec r15",
        "jnz loop_begin",
        ".endloop",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# dispatch helpers
# ---------------------------------------------------------------------------

_LIBRARIES = {"arm": arm_library, "x86": x86_library}
_TEMPLATES = {"arm": arm_template, "x86": x86_template}


def library_for(isa: str, **kwargs) -> InstructionLibrary:
    """Stock library by ISA name (``arm`` or ``x86``)."""
    try:
        return _LIBRARIES[isa](**kwargs)
    except KeyError:
        raise ValueError(f"unknown ISA {isa!r}; expected one of "
                         f"{sorted(_LIBRARIES)}") from None


def template_for(isa: str, **kwargs) -> str:
    """Stock template by ISA name (``arm`` or ``x86``)."""
    try:
        return _TEMPLATES[isa](**kwargs)
    except KeyError:
        raise ValueError(f"unknown ISA {isa!r}; expected one of "
                         f"{sorted(_TEMPLATES)}") from None


# ---------------------------------------------------------------------------
# stock configuration files (CLI quickstart)
# ---------------------------------------------------------------------------

def write_stock_config(directory, isa: str = "arm",
                       metric: str = "power",
                       population_size: int = 20,
                       individual_size: int = 50,
                       generations: int = 15,
                       seed: int = 42):
    """Write a ready-to-run main configuration + template to a directory.

    Produces the three files a GeST user would author by hand —
    ``config.xml``, ``template.s`` and ``measurement.xml`` — wired to
    the stock instruction catalog for ``isa`` and the measurement class
    for ``metric``.  Returns the path of ``config.xml``, suitable for
    ``gest run``.
    """
    from pathlib import Path

    from ..core.config import GAParameters, RunConfig, config_to_xml

    measurement_classes = {
        "power": "repro.measurement.power.PowerMeasurement",
        "temperature": "repro.measurement.temperature."
                       "TemperatureMeasurement",
        "ipc": "repro.measurement.ipc.IPCMeasurement",
        "didt": "repro.measurement.oscilloscope.OscilloscopeMeasurement",
    }
    if metric not in measurement_classes:
        raise ValueError(f"unknown metric {metric!r}; expected one of "
                         f"{sorted(measurement_classes)}")

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    template_text = template_for(isa)
    (directory / "template.s").write_text(template_text)
    (directory / "measurement.xml").write_text(
        '<measurement_config>\n'
        '  <param name="duration" value="5"/>\n'
        '  <param name="samples" value="5"/>\n'
        '  <param name="cores" value="1"/>\n'
        '</measurement_config>\n')

    ga = GAParameters(population_size=population_size,
                      individual_size=individual_size,
                      mutation_rate=max(0.02, round(1.0 / individual_size, 4)),
                      generations=generations, seed=seed)
    config = RunConfig(ga=ga, library=library_for(isa),
                       template_text=template_text,
                       measurement_class=measurement_classes[metric])
    xml = config_to_xml(config, template_filename="template.s",
                        results_dir="results")
    # Reference the measurement parameter file from the main config.
    xml = xml.replace(
        f'<measurement class="{measurement_classes[metric]}" />',
        f'<measurement class="{measurement_classes[metric]}" '
        'config="measurement.xml" />')
    config_path = directory / "config.xml"
    config_path.write_text(xml)
    return config_path


# ---------------------------------------------------------------------------
# cache/DRAM stress catalog (paper Section VII extension)
# ---------------------------------------------------------------------------

def arm_cache_stress_library(max_offset: int = 4096,
                             offset_stride: int = 64,
                             max_base_stride: int = 8192,
                             base_stride_step: int = 64
                             ) -> InstructionLibrary:
    """Instruction definitions for LLC/DRAM stress searches.

    The paper sketches exactly this recipe: "providing in the input
    file load/store instruction definitions with various strides, base
    memory registers and various min-max immediate values" and
    optimising toward cache misses.  Beyond wide-offset loads/stores,
    the set includes a base-advance instruction (``add base, base,
    #stride``) so the GA can walk the working set across iterations —
    small strides stay cache-resident, line-sized and larger strides
    stream through the hierarchy.
    """
    operands = [
        RegisterOperand("int_dst", ["x1", "x2", "x3", "x4"]),
        RegisterOperand("int_src", ["x1", "x2", "x3", "x4"]),
        RegisterOperand("mem_result", ["x7", "x8", "x9"]),
        RegisterOperand("mem_address_register", ["x10", "x11"]),
        ImmediateOperand("mem_offset", 0, max_offset, offset_stride),
        ImmediateOperand("base_stride", base_stride_step, max_base_stride,
                         base_stride_step),
        RegisterOperand("vec_dst", [f"v{i}" for i in range(8)]),
        RegisterOperand("vec_src", [f"v{i}" for i in range(8)]),
    ]
    instructions = [
        InstructionSpec("LDR", ["mem_result", "mem_address_register",
                                "mem_offset"],
                        "ldr op1, [op2, #op3]", "mem"),
        InstructionSpec("STR", ["int_src", "mem_address_register",
                                "mem_offset"],
                        "str op1, [op2, #op3]", "mem"),
        InstructionSpec("LDP", ["mem_result", "int_dst",
                                "mem_address_register", "mem_offset"],
                        "ldp op1, op2, [op3, #op4]", "mem"),
        InstructionSpec("ADVANCE", ["mem_address_register", "base_stride"],
                        "add op1, op1, #op2", "int_short"),
        InstructionSpec("ADD", ["int_dst", "int_src", "int_src"],
                        "add op1, op2, op3", "int_short"),
        InstructionSpec("EOR", ["int_dst", "int_src", "int_src"],
                        "eor op1, op2, op3", "int_short"),
        InstructionSpec("VADD", ["vec_dst", "vec_src", "vec_src"],
                        "vadd op1, op2, op3", "simd"),
        InstructionSpec("B", [], "b 1f\n1:", "branch"),
        InstructionSpec("NOP", [], "nop", "nop"),
    ]
    return InstructionLibrary(operands, instructions)


def arm_shared_template(iterations: int = 1_000_000,
                        checkerboard: bool = True) -> str:
    """A multi-instance template whose second base register points into
    the *shared* memory segment (paper Section IV extension).

    "The user must provide a template file that initializes
    shared-memory and launches multiple workload threads" — here the
    shared segment starts at ``SHARED_SEGMENT_BASE`` (1 MiB); the
    simulated machine treats accesses through ``x11`` as interconnect
    traffic to the shared LLC slice, while ``x10`` stays core-private.
    The GA, given both bases in its ``mem_address_register`` pool, is
    free to discover how much shared traffic maximises power.
    """
    template = arm_template(iterations=iterations,
                            checkerboard=checkerboard)
    return template.replace("mov x11, #8192",
                            "mov x11, #0x100000   // shared segment")
