"""ISA substrate: SimISA model, assemblers and stock GA catalogs."""

from .arm import ArmAssembler, INT_REGISTERS, VEC_REGISTERS
from .assembler import BaseAssembler, split_operands
from .clike import clike_library, clike_template, compile_clike
from .catalogs import (CHECKERBOARD_5, CHECKERBOARD_A,
                       arm_cache_stress_library, arm_library,
                       arm_shared_template,
                       arm_template, library_for, template_for,
                       write_stock_config, x86_library, x86_template)
from .model import (FLAGS_REGISTER, DecodedInstruction, InstrClass, Program)
from .x86 import GP_REGISTERS, X86Assembler, XMM_REGISTERS

__all__ = [
    "ArmAssembler", "INT_REGISTERS", "VEC_REGISTERS",
    "BaseAssembler", "split_operands",
    "CHECKERBOARD_5", "CHECKERBOARD_A",
    "arm_cache_stress_library", "arm_library", "arm_shared_template",
    "arm_template", "library_for", "template_for",
    "write_stock_config", "x86_library", "x86_template",
    "clike_library", "clike_template", "compile_clike",
    "FLAGS_REGISTER", "DecodedInstruction", "InstrClass", "Program",
    "GP_REGISTERS", "X86Assembler", "XMM_REGISTERS",
]


def assembler_for(isa: str) -> BaseAssembler:
    """Assembler instance by ISA name (``arm`` or ``x86``)."""
    if isa == "arm":
        return ArmAssembler()
    if isa == "x86":
        return X86Assembler()
    raise ValueError(f"unknown ISA {isa!r}; expected 'arm' or 'x86'")
