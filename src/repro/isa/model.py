"""SimISA: the decoded instruction model shared by both syntax front-ends.

The paper's framework is ISA-agnostic — instructions are whatever the
user declares in the configuration file, and the target machine's
toolchain gives them meaning.  Our simulated targets understand a small
load/store ISA ("SimISA") with two *syntaxes*: an ARM-flavoured one
(``add x1, x2, x3`` / ``ldr x2, [x10, #8]``) and an x86-flavoured one
(``add rax, rbx`` / ``mov rax, [rbp+8]``).  Both assemble to the same
:class:`DecodedInstruction` form consumed by the pipeline model.

Instruction classes mirror the breakdown used in the paper's Tables III
and IV: short-latency integer, long-latency integer, float/SIMD
(tracked separately so mixes can be reported either way), memory and
branch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["InstrClass", "DecodedInstruction", "Program",
           "INT_REGISTER_COUNT", "VEC_REGISTER_COUNT", "FLAGS_REGISTER"]

#: Architectural register file sizes shared by both syntaxes.
INT_REGISTER_COUNT = 16
VEC_REGISTER_COUNT = 16

#: Pseudo-register representing the condition flags (set by ``cmp`` /
#: ``subs``, read by conditional branches).
FLAGS_REGISTER = "flags"


class InstrClass(enum.Enum):
    """Execution classes, each mapping to a functional-unit pool and an
    energy-per-instruction entry in the CPU model."""

    INT_SHORT = "int_short"    # add/sub/logic/shift — 1-cycle ALU ops
    INT_LONG = "int_long"      # mul/div — multi-cycle integer ops
    FLOAT = "float"            # scalar floating point
    SIMD = "simd"              # vector ops (widest datapath, highest EPI)
    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (InstrClass.MEM_LOAD, InstrClass.MEM_STORE)

    @property
    def table_category(self) -> str:
        """The five-way grouping of the paper's Table III/IV columns."""
        if self in (InstrClass.FLOAT, InstrClass.SIMD):
            return "Float/SIMD"
        return {
            InstrClass.INT_SHORT: "ShortInt",
            InstrClass.INT_LONG: "LongInt",
            InstrClass.MEM_LOAD: "Mem",
            InstrClass.MEM_STORE: "Mem",
            InstrClass.BRANCH: "Branch",
            InstrClass.NOP: "Nop",
        }[self]


@dataclass
class DecodedInstruction:
    """One assembled instruction, ready for the pipeline model.

    ``reads``/``writes`` name architectural registers (``x3``, ``v2``,
    or the ``flags`` pseudo-register); the pipeline uses them for
    dependency tracking.  Memory operations carry their base register
    and immediate offset so the cache model can compute addresses.
    ``branch_target`` is an instruction index within the program
    (resolved from labels by the assembler); ``None`` marks the
    fall-through "branch to next instruction" used inside GA loops.
    """

    opcode: str
    iclass: InstrClass
    #: Latency/energy group (``alu``, ``mul``, ``div``, ``fadd``, ``fma``,
    #: ``load``...) — a finer key than ``iclass`` used by the CPU model's
    #: latency and EPI tables.  Defaults to the class value.
    group: str = ""
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    immediate: Optional[int] = None
    mem_base: Optional[str] = None
    mem_offset: int = 0
    branch_target: Optional[int] = None
    backward: bool = False
    source_line: int = 0
    text: str = ""

    @property
    def is_load(self) -> bool:
        return self.iclass is InstrClass.MEM_LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass is InstrClass.MEM_STORE

    @property
    def is_branch(self) -> bool:
        return self.iclass is InstrClass.BRANCH


@dataclass
class Program:
    """An assembled program: init section + loop body.

    The simulated machine executes ``init`` once (establishing register
    data patterns that feed the power model's toggle factor) and then
    repeats ``loop`` until the requested duration elapses.  ``name``
    is the uploaded file name, kept for diagnostics.
    """

    name: str
    init: List[DecodedInstruction] = field(default_factory=list)
    loop: List[DecodedInstruction] = field(default_factory=list)
    #: Initial register values established by the init section, register
    #: name → integer value (used by the power model's toggle factor).
    register_values: Dict[str, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)

    @property
    def loop_length(self) -> int:
        return len(self.loop)

    def class_counts(self) -> Dict[InstrClass, int]:
        counts: Dict[InstrClass, int] = {}
        for instr in self.loop:
            counts[instr.iclass] = counts.get(instr.iclass, 0) + 1
        return counts

    def table_breakdown(self) -> Dict[str, int]:
        """Loop-body instruction counts in the paper's table categories."""
        breakdown: Dict[str, int] = {}
        for instr in self.loop:
            category = instr.iclass.table_category
            breakdown[category] = breakdown.get(category, 0) + 1
        return breakdown


def registers_named(prefix: str, count: int) -> Sequence[str]:
    """Helper: ``registers_named('x', 4)`` → ``('x0', ..., 'x3')``."""
    return tuple(f"{prefix}{i}" for i in range(count))
