"""SimISA: the decoded instruction model shared by both syntax front-ends.

The paper's framework is ISA-agnostic — instructions are whatever the
user declares in the configuration file, and the target machine's
toolchain gives them meaning.  Our simulated targets understand a small
load/store ISA ("SimISA") with two *syntaxes*: an ARM-flavoured one
(``add x1, x2, x3`` / ``ldr x2, [x10, #8]``) and an x86-flavoured one
(``add rax, rbx`` / ``mov rax, [rbp+8]``).  Both assemble to the same
:class:`DecodedInstruction` form consumed by the pipeline model.

Instruction classes mirror the breakdown used in the paper's Tables III
and IV: short-latency integer, long-latency integer, float/SIMD
(tracked separately so mixes can be reported either way), memory and
branch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["InstrClass", "DecodedInstruction", "DependenceSummary",
           "Program", "INT_REGISTER_COUNT", "VEC_REGISTER_COUNT",
           "FLAGS_REGISTER"]

#: Architectural register file sizes shared by both syntaxes.
INT_REGISTER_COUNT = 16
VEC_REGISTER_COUNT = 16

#: Pseudo-register representing the condition flags (set by ``cmp`` /
#: ``subs``, read by conditional branches).
FLAGS_REGISTER = "flags"

#: Sentinel dependence row: the chain through this register was killed
#: by a constant restart (a write whose instruction has no live reads).
_DEAD = (-1, -1, None)


class InstrClass(enum.Enum):
    """Execution classes, each mapping to a functional-unit pool and an
    energy-per-instruction entry in the CPU model."""

    INT_SHORT = "int_short"    # add/sub/logic/shift — 1-cycle ALU ops
    INT_LONG = "int_long"      # mul/div — multi-cycle integer ops
    FLOAT = "float"            # scalar floating point
    SIMD = "simd"              # vector ops (widest datapath, highest EPI)
    MEM_LOAD = "mem_load"
    MEM_STORE = "mem_store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (InstrClass.MEM_LOAD, InstrClass.MEM_STORE)

    @property
    def table_category(self) -> str:
        """The five-way grouping of the paper's Table III/IV columns."""
        if self in (InstrClass.FLOAT, InstrClass.SIMD):
            return "Float/SIMD"
        return {
            InstrClass.INT_SHORT: "ShortInt",
            InstrClass.INT_LONG: "LongInt",
            InstrClass.MEM_LOAD: "Mem",
            InstrClass.MEM_STORE: "Mem",
            InstrClass.BRANCH: "Branch",
            InstrClass.NOP: "Nop",
        }[self]


@dataclass
class DecodedInstruction:
    """One assembled instruction, ready for the pipeline model.

    ``reads``/``writes`` name architectural registers (``x3``, ``v2``,
    or the ``flags`` pseudo-register); the pipeline uses them for
    dependency tracking.  Memory operations carry their base register
    and immediate offset so the cache model can compute addresses.
    ``branch_target`` is an instruction index within the program
    (resolved from labels by the assembler); ``None`` marks the
    fall-through "branch to next instruction" used inside GA loops.
    """

    opcode: str
    iclass: InstrClass
    #: Latency/energy group (``alu``, ``mul``, ``div``, ``fadd``, ``fma``,
    #: ``load``...) — a finer key than ``iclass`` used by the CPU model's
    #: latency and EPI tables.  Defaults to the class value.
    group: str = ""
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    immediate: Optional[int] = None
    mem_base: Optional[str] = None
    mem_offset: int = 0
    branch_target: Optional[int] = None
    backward: bool = False
    source_line: int = 0
    text: str = ""

    @property
    def is_load(self) -> bool:
        return self.iclass is InstrClass.MEM_LOAD

    @property
    def is_store(self) -> bool:
        return self.iclass is InstrClass.MEM_STORE

    @property
    def is_branch(self) -> bool:
        return self.iclass is InstrClass.BRANCH


@dataclass(frozen=True)
class DependenceSummary:
    """Arch-independent condensation of a loop body's static structure.

    Built once per :class:`Program` (the assembler warms it at the end
    of ``assemble``) and consumed by the static cost model's ranking
    fast path (:func:`repro.staticcheck.costmodel.static_score`):
    pricing the body against *any* microarchitecture then touches only
    the small group vocabulary and the cycle family — never the
    instruction list — which is what keeps a static score orders of
    magnitude cheaper than one simulated evaluation.

    ``cycle_counts`` holds the loop-carried dependence cycles found by
    *single-predecessor condensation*: one sequential pass over the
    body tracks, per register, the deepest dependence path from an
    iteration-boundary read (a register read before its first in-body
    write), keeping only the deepest predecessor when paths merge.
    Every recorded cycle is a real dependence cycle of the body, so a
    latency-weighted mean over this family never exceeds the exact
    maximum cycle ratio — the relaxation is *sound* for upper-bound
    IPC estimates (see the cost model's docstring for the ordering).
    """

    #: Distinct ``(group, iclass)`` pricing keys of the loop body.
    group_keys: Tuple[Tuple[str, InstrClass], ...]
    #: Loop-body instruction count per vocabulary entry.
    group_counts: Tuple[int, ...]
    #: Loop-body length (== ``sum(group_counts)``), kept denormalised
    #: so scoring never iterates.
    loop_length: int
    #: Per cycle: instruction count per vocabulary entry along the
    #: cycle's dependence path.
    cycle_counts: Tuple[Tuple[int, ...], ...]
    #: Per cycle: the number of iterations it spans (its edge count in
    #: the boundary-register graph).
    cycle_lengths: Tuple[int, ...]


@dataclass
class Program:
    """An assembled program: init section + loop body.

    The simulated machine executes ``init`` once (establishing register
    data patterns that feed the power model's toggle factor) and then
    repeats ``loop`` until the requested duration elapses.  ``name``
    is the uploaded file name, kept for diagnostics.
    """

    name: str
    init: List[DecodedInstruction] = field(default_factory=list)
    loop: List[DecodedInstruction] = field(default_factory=list)
    #: Initial register values established by the init section, register
    #: name → integer value (used by the power model's toggle factor).
    register_values: Dict[str, int] = field(default_factory=dict)
    labels: Dict[str, int] = field(default_factory=dict)
    #: Cached :class:`DependenceSummary`; built lazily, warmed by the
    #: assembler so every assembled program ships with it.
    _dependence_summary: Optional[DependenceSummary] = field(
        default=None, repr=False, compare=False)

    @property
    def loop_length(self) -> int:
        return len(self.loop)

    def dependence_summary(self) -> DependenceSummary:
        """The loop body's :class:`DependenceSummary` (cached).

        Dependence edges come from ``reads`` only, mirroring the
        pipeline scheduler's last-writer map (a memory base register
        is an address input, not an issue-time dependence).  A write
        whose instruction has no live read inputs *kills* the chain
        through that register (a constant restart), and a later read
        of it no longer crosses the iteration boundary.
        """
        cached = self._dependence_summary
        if cached is not None:
            return cached
        vocabulary: Dict[Tuple[str, InstrClass], int] = {}
        counts: List[int] = []
        # rows[reg] = (depth, seed, link) — deepest boundary-rooted
        # dependence path ending at reg's last write, where link is a
        # cons-chain of vocabulary ids along the path; _DEAD marks a
        # killed chain.  seeds[i] names the i-th boundary register.
        rows: Dict[str, tuple] = {}
        seeds: List[str] = []
        for instr in self.loop:
            key = (instr.group or instr.iclass.value, instr.iclass)
            gid = vocabulary.get(key)
            if gid is None:
                gid = len(counts)
                vocabulary[key] = gid
                counts.append(0)
            counts[gid] += 1
            best = None
            for reg in instr.reads:
                entry = rows.get(reg)
                if entry is None:
                    entry = (0, len(seeds), None)
                    seeds.append(reg)
                    rows[reg] = entry
                elif entry is _DEAD:
                    continue
                if best is None or entry[0] > best[0]:
                    best = entry
            if instr.writes:
                out = _DEAD if best is None else \
                    (best[0] + 1, best[1], (gid, best[2]))
                for reg in instr.writes:
                    rows[reg] = out
        # Boundary graph: one edge per seed whose register is written
        # by a boundary-rooted chain (dst ← src); an untouched seed is
        # the identity and spans no cycle.
        predecessor: Dict[int, tuple] = {}
        for dst, reg in enumerate(seeds):
            entry = rows[reg]
            if entry is _DEAD or entry[2] is None:
                continue
            predecessor[dst] = (entry[1], entry[2])
        cycle_counts: List[Tuple[int, ...]] = []
        cycle_lengths: List[int] = []
        color = [0] * len(seeds)
        for start in range(len(seeds)):
            if color[start]:
                continue
            trail: List[int] = []
            node = start
            while True:
                color[node] = 1
                trail.append(node)
                edge = predecessor.get(node)
                if edge is None:
                    break
                follow = edge[0]
                if color[follow] == 1:
                    members = trail[trail.index(follow):]
                    vector = [0] * len(counts)
                    for member in members:
                        link = predecessor[member][1]
                        while link is not None:
                            vector[link[0]] += 1
                            link = link[1]
                    cycle_counts.append(tuple(vector))
                    cycle_lengths.append(len(members))
                    break
                if color[follow] == 2:
                    break
                node = follow
            for visited in trail:
                color[visited] = 2
        summary = DependenceSummary(
            group_keys=tuple(vocabulary),
            group_counts=tuple(counts),
            loop_length=len(self.loop),
            cycle_counts=tuple(cycle_counts),
            cycle_lengths=tuple(cycle_lengths))
        self._dependence_summary = summary
        return summary

    def class_counts(self) -> Dict[InstrClass, int]:
        counts: Dict[InstrClass, int] = {}
        for instr in self.loop:
            counts[instr.iclass] = counts.get(instr.iclass, 0) + 1
        return counts

    def table_breakdown(self) -> Dict[str, int]:
        """Loop-body instruction counts in the paper's table categories."""
        breakdown: Dict[str, int] = {}
        for instr in self.loop:
            category = instr.iclass.table_category
            breakdown[category] = breakdown.get(category, 0) + 1
        return breakdown


def registers_named(prefix: str, count: int) -> Sequence[str]:
    """Helper: ``registers_named('x', 4)`` → ``('x0', ..., 'x3')``."""
    return tuple(f"{prefix}{i}" for i in range(count))
