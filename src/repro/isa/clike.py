"""C-level optimisation support (paper Section III.B.2).

"It is worth mentioning that while this work performs GA searches at
assembly programming level, the instruction definition interface and
the template source file can be also used to perform optimization at a
higher-level language (e.g. at a C code level)."

This module demonstrates that claim end to end: the GA's instruction
definitions are *C statements* and the template is a C-like source
file; a small compiler lowers the generated program to SimISA assembly,
which then flows through the unchanged toolchain → machine → sensor
path.  Only the target's compile step differs, exactly as it would on
real hardware (gcc instead of as).

The statement language (one statement per line):

========================  =======================================
statement                 lowering
========================  =======================================
``long a = 123;``         ``mov``  (declaration/initialisation)
``double f0 = 0xAA..;``   ``fmov`` (bit-pattern initialisation)
``a = b + c;``            ``add`` / ``sub`` / ``eor`` / ``mul`` /
                          ``sdiv`` by operator (+ - ^ * /)
``f0 = f1 * f2;``         ``fmul`` / ``fadd`` / ``fdiv``
``f0 = fma(f1, f2);``     ``fmla`` (f0 += f1*f2)
``a = p[IMM];``           ``ldr``  (pointer + byte offset)
``p[IMM] = a;``           ``str``
``label:`` / ``goto l;``  label / ``b``
``loop { ... }``          the measured region (.loop/.endloop)
========================  =======================================

Variables: ``a``–``f`` map to ``x1``–``x6``; pointers ``p``/``q`` to
``x10``/``x11``; ``f0``–``f7`` to ``v0``–``v7``; ``i`` (the loop
counter) to ``x0``.
"""

from __future__ import annotations

import re
from typing import List

from ..core.errors import AssemblyError
from ..core.instruction import InstructionLibrary, InstructionSpec
from ..core.operand import ImmediateOperand, RegisterOperand

__all__ = ["compile_clike", "clike_library", "clike_template"]

_INT_VARS = {"a": "x1", "b": "x2", "c": "x3", "d": "x4", "e": "x5",
             "f": "x6", "t": "x7", "u": "x8", "w": "x9",
             "i": "x0", "p": "x10", "q": "x11"}
_FLOAT_VARS = {f"f{n}": f"v{n}" for n in range(8)}

_INT_OPS = {"+": "add", "-": "sub", "^": "eor", "|": "orr",
            "*": "mul", "/": "sdiv"}
_FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

_DECL_RE = re.compile(
    r"^(?:long|double)\s+(\w+)\s*=\s*(-?(?:0[xX][0-9a-fA-F]+|\d+))\s*;$")
_BINOP_RE = re.compile(r"^(\w+)\s*=\s*(\w+)\s*([-+^|*/])\s*(\w+)\s*;$")
_FMA_RE = re.compile(r"^(\w+)\s*=\s*fma\(\s*(\w+)\s*,\s*(\w+)\s*\)\s*;$")
_LOAD_RE = re.compile(r"^(\w+)\s*=\s*(\w+)\[(\d+)\]\s*;$")
_STORE_RE = re.compile(r"^(\w+)\[(\d+)\]\s*=\s*(\w+)\s*;$")
_GOTO_RE = re.compile(r"^goto\s+([\w$]+)\s*;$")
_LABEL_RE = re.compile(r"^([\w$]+|\d+)\s*:$")


def _var(name: str, line_number: int) -> str:
    if name in _INT_VARS:
        return _INT_VARS[name]
    if name in _FLOAT_VARS:
        return _FLOAT_VARS[name]
    raise AssemblyError(f"unknown variable {name!r}", line_number)


def _is_float(name: str) -> bool:
    return name in _FLOAT_VARS


def _lower_statement(statement: str, line_number: int) -> List[str]:
    """Lower one C-like statement to SimISA assembly lines."""
    match = _DECL_RE.match(statement)
    if match:
        name, value = match.groups()
        reg = _var(name, line_number)
        mnemonic = "fmov" if _is_float(name) else "mov"
        return [f"{mnemonic} {reg}, #{value}"]

    match = _FMA_RE.match(statement)
    if match:
        dst, src1, src2 = match.groups()
        if not (_is_float(dst) and _is_float(src1) and _is_float(src2)):
            raise AssemblyError("fma() needs float variables", line_number)
        return [f"fmla {_var(dst, line_number)}, "
                f"{_var(src1, line_number)}, {_var(src2, line_number)}"]

    match = _BINOP_RE.match(statement)
    if match:
        dst, src1, op, src2 = match.groups()
        floats = [_is_float(v) for v in (dst, src1, src2)]
        if any(floats):
            if not all(floats):
                raise AssemblyError(
                    "mixed int/float expression", line_number)
            table = _FLOAT_OPS
        else:
            table = _INT_OPS
        if op not in table:
            raise AssemblyError(
                f"operator {op!r} unsupported for these types",
                line_number)
        return [f"{table[op]} {_var(dst, line_number)}, "
                f"{_var(src1, line_number)}, {_var(src2, line_number)}"]

    match = _LOAD_RE.match(statement)
    if match:
        dst, pointer, offset = match.groups()
        if pointer not in ("p", "q"):
            raise AssemblyError(
                f"{pointer!r} is not a pointer (use p or q)", line_number)
        return [f"ldr {_var(dst, line_number)}, "
                f"[{_var(pointer, line_number)}, #{offset}]"]

    match = _STORE_RE.match(statement)
    if match:
        pointer, offset, src = match.groups()
        if pointer not in ("p", "q"):
            raise AssemblyError(
                f"{pointer!r} is not a pointer (use p or q)", line_number)
        return [f"str {_var(src, line_number)}, "
                f"[{_var(pointer, line_number)}, #{offset}]"]

    match = _GOTO_RE.match(statement)
    if match:
        return [f"b {match.group(1)}"]

    match = _LABEL_RE.match(statement)
    if match:
        return [f"{match.group(1)}:"]

    raise AssemblyError(f"cannot parse statement {statement!r}",
                        line_number)


def compile_clike(source: str) -> str:
    """Translate a C-like source file to SimISA assembly text.

    ``loop { ... }`` marks the measured region; the compiler emits the
    ``.loop``/``.endloop`` directives plus the counter-driven loop edge
    the templates normally write by hand.
    """
    lines: List[str] = []
    in_loop = False
    loop_seen = False
    for line_number, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.split("//")[0].strip()
        if not stripped:
            continue
        if stripped == "loop {":
            if loop_seen:
                raise AssemblyError("duplicate loop block", line_number)
            lines.append(".loop")
            lines.append("__clike_loop__:")
            in_loop = True
            loop_seen = True
            continue
        if stripped == "}":
            if not in_loop:
                raise AssemblyError("unmatched '}'", line_number)
            lines.append("subs x0, x0, #1")
            lines.append("bne __clike_loop__")
            lines.append(".endloop")
            in_loop = False
            continue
        lines.extend(_lower_statement(stripped, line_number))
    if in_loop:
        raise AssemblyError("unterminated loop block")
    if not loop_seen:
        raise AssemblyError("C-like source has no loop { } block")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# GA catalog at the C level
# ---------------------------------------------------------------------------

def clike_library(max_offset: int = 256,
                  offset_stride: int = 8) -> InstructionLibrary:
    """Statement definitions for a C-level GA search.

    The GA machinery is unchanged — these are ordinary Figure-4 style
    definitions whose *format strings are C statements*.
    """
    operands = [
        RegisterOperand("ivar", ["a", "b", "c", "d", "e", "f"]),
        RegisterOperand("fvar", [f"f{n}" for n in range(8)]),
        RegisterOperand("ptr", ["p", "q"]),
        ImmediateOperand("offset", 0, max_offset, offset_stride),
    ]
    instructions = [
        InstructionSpec("IADD", ["ivar", "ivar", "ivar"],
                        "op1 = op2 + op3;", "int_short"),
        InstructionSpec("IXOR", ["ivar", "ivar", "ivar"],
                        "op1 = op2 ^ op3;", "int_short"),
        InstructionSpec("IMUL", ["ivar", "ivar", "ivar"],
                        "op1 = op2 * op3;", "int_long"),
        InstructionSpec("FADD", ["fvar", "fvar", "fvar"],
                        "op1 = op2 + op3;", "float"),
        InstructionSpec("FMUL", ["fvar", "fvar", "fvar"],
                        "op1 = op2 * op3;", "float"),
        InstructionSpec("FMA", ["fvar", "fvar", "fvar"],
                        "op1 = fma(op2, op3);", "float"),
        InstructionSpec("LOAD", ["ivar", "ptr", "offset"],
                        "op1 = op2[op3];", "mem"),
        InstructionSpec("STORE", ["ptr", "offset", "ivar"],
                        "op1[op2] = op3;", "mem"),
    ]
    return InstructionLibrary(operands, instructions)


def clike_template(iterations: int = 1_000_000) -> str:
    """The C-like template: declarations, then the measured loop with
    the ``#loop_code`` marker."""
    lines = [
        "// GeST-repro C-level template",
        f"long i = {iterations};",
        "long p = 4096;",
        "long q = 8192;",
    ]
    for index, name in enumerate(("a", "b", "c", "d", "e", "f")):
        pattern = "0xAAAAAAAAAAAAAAAA" if index % 2 \
            else "0x5555555555555555"
        lines.append(f"long {name} = {pattern};")
    for n in range(8):
        pattern = "0xAAAAAAAAAAAAAAAA" if n % 2 \
            else "0x5555555555555555"
        lines.append(f"double f{n} = {pattern};")
    lines += [
        "loop {",
        "#loop_code",
        "}",
    ]
    return "\n".join(lines) + "\n"
