"""Baseline workload substrate (conventional benchmarks & stress-tests)."""

from .builder import LoopBuilder, build_workload_source
from .library import (FIGURE_BASELINES, Workload, workload, workload_names,
                      workloads)

__all__ = [
    "LoopBuilder", "build_workload_source",
    "FIGURE_BASELINES", "Workload", "workload", "workload_names",
    "workloads",
]
