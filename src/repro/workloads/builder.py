"""Programmatic loop construction for baseline workloads.

The paper compares its GA viruses against conventional benchmarks
(coremark, fdct, imdct, Parsec, NAS), industry stress-tests (Prime95,
AMD's stability test) and manually-written stress loops.  We have none
of those binaries — and would not want to model whole programs — so
each baseline is represented by a *characteristic kernel loop* with the
workload's published character (integer/branchy, float-heavy, memory
mix, dependency structure).  :class:`LoopBuilder` assembles such loops
in either SimISA syntax so one workload definition serves every
simulated platform.

``chain=True`` blocks serialise on one register (a dependency chain —
low ILP, low power); ``chain=False`` blocks cycle independent
registers (high ILP).
"""

from __future__ import annotations

from typing import List

from ..core.errors import ConfigError
from ..isa.catalogs import arm_template, x86_template

__all__ = ["LoopBuilder", "build_workload_source"]

# Register pools kept clear of the stock templates' reserved registers
# (loop counter and memory bases).
_ARM_INT = ("x1", "x2", "x3", "x4", "x5", "x6")
_ARM_MEM_DST = ("x7", "x8", "x9")
_ARM_VEC = tuple(f"v{i}" for i in range(16))
_ARM_BASES = ("x10", "x11")

_X86_INT = ("rax", "rbx", "rcx", "rdx", "rsi", "rdi")
_X86_MEM_DST = ("r9", "r10", "r11")
_X86_VEC = tuple(f"xmm{i}" for i in range(16))
_X86_BASES = ("rbp", "r8")


class LoopBuilder:
    """Builds loop bodies block by block in one of the two syntaxes."""

    def __init__(self, isa: str) -> None:
        if isa not in ("arm", "x86"):
            raise ConfigError(f"unknown ISA {isa!r}; expected 'arm' or 'x86'")
        self.isa = isa
        self.lines: List[str] = []
        self._counter = 0

    # -- block emitters ---------------------------------------------------

    def int_block(self, n: int, chain: bool = False) -> "LoopBuilder":
        """Short-latency integer ALU operations."""
        ops_arm = ("add", "sub", "eor", "orr")
        ops_x86 = ("add", "sub", "xor", "or")
        for _ in range(n):
            i = self._next()
            if self.isa == "arm":
                op = ops_arm[i % len(ops_arm)]
                if chain:
                    self.lines.append(f"{op} x1, x1, x2")
                else:
                    d, a, b = (_ARM_INT[i % 6], _ARM_INT[(i + 1) % 6],
                               _ARM_INT[(i + 2) % 6])
                    self.lines.append(f"{op} {d}, {a}, {b}")
            else:
                op = ops_x86[i % len(ops_x86)]
                if chain:
                    self.lines.append(f"{op} rax, rbx")
                else:
                    d, s = _X86_INT[i % 6], _X86_INT[(i + 1) % 6]
                    self.lines.append(f"{op} {d}, {s}")
        return self

    def mul_block(self, n: int, chain: bool = False) -> "LoopBuilder":
        """Long-latency integer multiplies."""
        for _ in range(n):
            i = self._next()
            if self.isa == "arm":
                if chain:
                    self.lines.append("mul x3, x3, x4")
                else:
                    d, a, b = (_ARM_INT[i % 6], _ARM_INT[(i + 1) % 6],
                               _ARM_INT[(i + 2) % 6])
                    self.lines.append(f"mul {d}, {a}, {b}")
            else:
                if chain:
                    self.lines.append("imul rcx, rdx")
                else:
                    d, s = _X86_INT[i % 6], _X86_INT[(i + 1) % 6]
                    self.lines.append(f"imul {d}, {s}")
        return self

    def div_block(self, n: int) -> "LoopBuilder":
        """Integer division — always a serialising long-latency op."""
        for _ in range(n):
            self._next()
            if self.isa == "arm":
                self.lines.append("sdiv x5, x5, x6")
            else:
                self.lines.append("idiv2 rsi, rdi")
        return self

    def float_block(self, n: int, chain: bool = False,
                    multiply: bool = True) -> "LoopBuilder":
        """Scalar floating point adds/multiplies."""
        for _ in range(n):
            i = self._next()
            if self.isa == "arm":
                op = "fmul" if multiply and i % 2 else "fadd"
                if chain:
                    self.lines.append(f"{op} v0, v0, v1")
                else:
                    d, a, b = (_ARM_VEC[i % 16], _ARM_VEC[(i + 1) % 16],
                               _ARM_VEC[(i + 2) % 16])
                    self.lines.append(f"{op} {d}, {a}, {b}")
            else:
                op = "mulsd" if multiply and i % 2 else "addsd"
                if chain:
                    self.lines.append(f"{op} xmm0, xmm1")
                else:
                    d, s = _X86_VEC[i % 16], _X86_VEC[(i + 1) % 16]
                    self.lines.append(f"{op} {d}, {s}")
        return self

    def simd_block(self, n: int, fma: bool = True,
                   chain: bool = False) -> "LoopBuilder":
        """Vector ops — the widest, most power-hungry datapath."""
        for _ in range(n):
            i = self._next()
            if self.isa == "arm":
                op = "vfma" if fma and i % 2 == 0 else "vmul"
                if chain:
                    self.lines.append(f"{op} v2, v2, v3")
                else:
                    d, a, b = (_ARM_VEC[i % 16], _ARM_VEC[(i + 1) % 16],
                               _ARM_VEC[(i + 3) % 16])
                    self.lines.append(f"{op} {d}, {a}, {b}")
            else:
                if fma and i % 2 == 0:
                    d, a, b = (_X86_VEC[i % 16], _X86_VEC[(i + 1) % 16],
                               _X86_VEC[(i + 3) % 16])
                    self.lines.append(f"vfmadd231ps {d}, {a}, {b}")
                else:
                    d, s = _X86_VEC[i % 16], _X86_VEC[(i + 1) % 16]
                    op = "mulps" if i % 3 else "addps"
                    self.lines.append(f"{op} {d}, {s}")
        return self

    def load_block(self, n: int, stride: int = 16) -> "LoopBuilder":
        """L1-resident loads off the template's base registers."""
        for _ in range(n):
            i = self._next()
            offset = (i * stride) % 256
            if self.isa == "arm":
                dst = _ARM_MEM_DST[i % 3]
                base = _ARM_BASES[i % 2]
                self.lines.append(f"ldr {dst}, [{base}, #{offset}]")
            else:
                dst = _X86_MEM_DST[i % 3]
                base = _X86_BASES[i % 2]
                self.lines.append(f"mov {dst}, [{base}+{offset}]")
        return self

    def store_block(self, n: int, stride: int = 16) -> "LoopBuilder":
        for _ in range(n):
            i = self._next()
            offset = (i * stride) % 256
            if self.isa == "arm":
                src = _ARM_INT[i % 6]
                base = _ARM_BASES[i % 2]
                self.lines.append(f"str {src}, [{base}, #{offset}]")
            else:
                src = _X86_INT[i % 6]
                base = _X86_BASES[i % 2]
                self.lines.append(f"mov [{base}+{offset}], {src}")
        return self

    def stream_block(self, n: int, advance: int = 64) -> "LoopBuilder":
        """Streaming loads: each group of accesses advances its base
        register by ``advance`` bytes, so with a modelled cache
        hierarchy the loop walks a large working set (line-sized or
        larger strides miss continuously).  Without a hierarchy this
        degrades gracefully to plain loads plus base arithmetic."""
        for _ in range(n):
            i = self._next()
            if self.isa == "arm":
                dst = _ARM_MEM_DST[i % 3]
                base = _ARM_BASES[i % 2]
                self.lines.append(f"ldr {dst}, [{base}, #0]")
                if i % 2 == 1:
                    self.lines.append(f"add {base}, {base}, #{advance}")
            else:
                dst = _X86_MEM_DST[i % 3]
                base = _X86_BASES[i % 2]
                self.lines.append(f"mov {dst}, [{base}+0]")
                if i % 2 == 1:
                    self.lines.append(f"add {base}, {advance}")
        return self

    def branch_block(self, n: int) -> "LoopBuilder":
        """Predictable taken branches to the next instruction."""
        for _ in range(n):
            self._next()
            if self.isa == "arm":
                self.lines.append("b 1f\n1:")
            else:
                self.lines.append("jmp 1f\n1:")
        return self

    def nop_block(self, n: int) -> "LoopBuilder":
        for _ in range(n):
            self._next()
            self.lines.append("nop")
        return self

    # -- output ------------------------------------------------------------

    def body(self) -> str:
        if not self.lines:
            raise ConfigError("loop body is empty")
        return "\n".join(self.lines)

    def __len__(self) -> int:
        return self._counter

    def _next(self) -> int:
        value = self._counter
        self._counter += 1
        return value


def build_workload_source(isa: str, body: str,
                          checkerboard: bool = True) -> str:
    """Wrap a loop body in the stock template for ``isa``."""
    template = arm_template(checkerboard=checkerboard) if isa == "arm" \
        else x86_template(checkerboard=checkerboard)
    from ..core.template import Template
    return Template(template).instantiate(body)
