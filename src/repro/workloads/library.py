"""The baseline workload library.

Each entry is a characteristic kernel standing in for a workload the
paper measures against its GA viruses:

* **bare-metal benchmarks** (Figures 5/6) — ``coremark`` (branchy
  integer), ``fdct``/``imdct`` (DSP float kernels), plus the two
  manually-written stress loops the paper's authors compare against;
* **OS benchmarks** (Figure 7) — proxies for the Parsec and NAS
  programs the X-Gene2 section plots;
* **stability tests** (Figures 8/9) — ``prime95`` (sustained FFT-like
  float/SIMD power hog), ``amd_stability_test``, ``linpack`` and a
  low-activity ``idle_spin``.

The mixes are calibrated for *plausibility*, not cycle-accuracy: each
keeps the documented character of its namesake (e.g. coremark: mostly
short integer ops and predictable branches with a small memory
footprint; Prime95: wide FMA-heavy SIMD at high sustained IPC).  The
point of the baselines is to anchor the figures' normalisation and to
confirm the GA beats non-adversarial code by the paper's margins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..core.errors import ConfigError
from .builder import LoopBuilder, build_workload_source

__all__ = ["Workload", "workload", "workload_names", "workloads",
           "FIGURE_BASELINES"]


@dataclass(frozen=True)
class Workload:
    """A named baseline program for one ISA."""

    name: str
    isa: str
    description: str
    source: str


def _coremark(isa: str) -> LoopBuilder:
    """EEMBC CoreMark: list/matrix/state-machine integer code —
    mostly 1-cycle ALU ops, frequent predictable branches, light
    memory, a few multiplies."""
    b = LoopBuilder(isa)
    b.int_block(10).branch_block(2).load_block(3).int_block(8, chain=True)
    b.mul_block(2).store_block(2).branch_block(2).int_block(6)
    return b


def _fdct(isa: str) -> LoopBuilder:
    """Forward DCT kernel: float multiply/add butterflies over a small
    block with serial rounds."""
    b = LoopBuilder(isa)
    b.load_block(4).float_block(8).float_block(6, chain=True)
    b.int_block(2).store_block(4).float_block(6)
    return b


def _imdct(isa: str) -> LoopBuilder:
    """Inverse MDCT (audio codecs): float MACs with window overlap —
    slightly more memory traffic than fdct."""
    b = LoopBuilder(isa)
    b.load_block(6).float_block(6).simd_block(4, fma=True, chain=True)
    b.store_block(4).float_block(6).int_block(2)
    return b


def _a15_manual_stress(isa: str) -> LoopBuilder:
    """A competent hand-written Cortex-A15 power loop: wide SIMD FMAs
    interleaved with loads — the kind of loop an engineer writes in an
    afternoon.  Its weaknesses (which the GA exploits) are a short
    serialised FMA stretch and an under-used second memory port."""
    b = LoopBuilder(isa)
    b.simd_block(8, fma=False).load_block(4).float_block(8)
    b.store_block(2).load_block(2).simd_block(2, fma=True).int_block(4)
    return b


def _a7_manual_stress(isa: str) -> LoopBuilder:
    """A hand-written Cortex-A7 stress loop: dual-issue friendly
    int+float pairs.  Misses the branch-unit power the GA discovers."""
    b = LoopBuilder(isa)
    for _ in range(6):
        b.float_block(1).int_block(1)
    b.load_block(4).float_block(6).int_block(4)
    return b


def _prime95(isa: str) -> LoopBuilder:
    """Prime95 torture test: large FFT butterflies — near-peak
    sustained SIMD FMA throughput with streaming loads.  The classic
    *power* virus: flat, high current (deep IR drop, little dI/dt)."""
    b = LoopBuilder(isa)
    b.simd_block(12, fma=True).load_block(3).simd_block(9, fma=True)
    b.store_block(2).simd_block(6, fma=True)
    return b


def _amd_stability(isa: str) -> LoopBuilder:
    """AMD's system stability test: mixed int/float/memory burn-in."""
    b = LoopBuilder(isa)
    b.float_block(6).int_block(6).load_block(4).simd_block(4)
    b.store_block(2).mul_block(2).branch_block(2).int_block(4)
    return b


def _linpack(isa: str) -> LoopBuilder:
    """LINPACK DGEMM inner loop: float FMAs with streaming memory."""
    b = LoopBuilder(isa)
    b.simd_block(8, fma=True).load_block(4).float_block(6)
    b.store_block(2).simd_block(6, fma=True)
    return b


def _idle_spin(isa: str) -> LoopBuilder:
    """A do-nothing polling loop — the low anchor of every figure."""
    b = LoopBuilder(isa)
    b.nop_block(8).int_block(2, chain=True).branch_block(1).nop_block(5)
    return b


# -- Parsec proxies (Figure 7) -------------------------------------------------

def _bodytrack(isa: str) -> LoopBuilder:
    """Parsec bodytrack: float-heavy particle filter with branches —
    Figure 7's normalisation baseline."""
    b = LoopBuilder(isa)
    b.float_block(8).load_block(4).branch_block(2).float_block(4, chain=True)
    b.int_block(4).store_block(2)
    return b


def _streamcluster(isa: str) -> LoopBuilder:
    """Parsec streamcluster: distance computations — float MACs over
    streamed points (memory bound)."""
    b = LoopBuilder(isa)
    b.load_block(8).float_block(8).store_block(2).float_block(4, chain=True)
    b.int_block(2)
    return b


def _canneal(isa: str) -> LoopBuilder:
    """Parsec canneal: pointer chasing and swaps — dependent loads and
    integer compares; low IPC."""
    b = LoopBuilder(isa)
    b.load_block(6).int_block(6, chain=True).branch_block(3)
    b.store_block(3).int_block(4, chain=True).load_block(2)
    return b


def _x264(isa: str) -> LoopBuilder:
    """Parsec x264: SIMD SAD/DCT kernels with memory traffic and
    motion-search branches."""
    b = LoopBuilder(isa)
    b.simd_block(6, fma=False).load_block(6).int_block(6, chain=True)
    b.store_block(2).simd_block(3, fma=False).branch_block(3)
    return b


# -- NAS proxies (Figure 7) ----------------------------------------------------

def _nas_bt(isa: str) -> LoopBuilder:
    """NAS BT: block-tridiagonal solver — dense float with memory."""
    b = LoopBuilder(isa)
    b.float_block(10).load_block(4).float_block(4, chain=True).store_block(3)
    b.int_block(3)
    return b


def _nas_cg(isa: str) -> LoopBuilder:
    """NAS CG: sparse matrix-vector — indirection-bound, low IPC."""
    b = LoopBuilder(isa)
    b.load_block(8).float_block(4, chain=True).load_block(4)
    b.int_block(4, chain=True).store_block(2)
    return b


def _nas_ep(isa: str) -> LoopBuilder:
    """NAS EP: embarrassingly-parallel random numbers — float/int mix,
    no memory pressure, high IPC."""
    b = LoopBuilder(isa)
    b.float_block(8).int_block(6).mul_block(3).float_block(6).branch_block(1)
    return b


def _nas_ft(isa: str) -> LoopBuilder:
    """NAS FT: 3-D FFT — SIMD butterflies with strided memory."""
    b = LoopBuilder(isa)
    b.simd_block(8, fma=True).load_block(5).store_block(3)
    b.float_block(5).int_block(2)
    return b


def _nas_lu(isa: str) -> LoopBuilder:
    """NAS LU: SSOR solver — float chains with moderate memory."""
    b = LoopBuilder(isa)
    b.float_block(6, chain=True).load_block(4).float_block(6)
    b.store_block(2).int_block(4)
    return b


def _nas_mg(isa: str) -> LoopBuilder:
    """NAS MG: multigrid — stencil loads dominate."""
    b = LoopBuilder(isa)
    b.load_block(9).float_block(6).store_block(3).float_block(3, chain=True)
    return b


_BUILDERS: Dict[str, Tuple[str, Callable[[str], LoopBuilder]]] = {
    "coremark": ("EEMBC CoreMark proxy (branchy integer)", _coremark),
    "fdct": ("forward DCT DSP kernel", _fdct),
    "imdct": ("inverse MDCT DSP kernel", _imdct),
    "a15_manual_stress": ("hand-written Cortex-A15 power loop",
                          _a15_manual_stress),
    "a7_manual_stress": ("hand-written Cortex-A7 power loop",
                         _a7_manual_stress),
    "prime95": ("Prime95 torture-test proxy (FFT FMA burn)", _prime95),
    "amd_stability_test": ("AMD system stability test proxy",
                           _amd_stability),
    "linpack": ("LINPACK DGEMM proxy", _linpack),
    "idle_spin": ("polling loop (low anchor)", _idle_spin),
    "bodytrack": ("Parsec bodytrack proxy", _bodytrack),
    "streamcluster": ("Parsec streamcluster proxy", _streamcluster),
    "canneal": ("Parsec canneal proxy", _canneal),
    "x264": ("Parsec x264 proxy", _x264),
    "nas_bt": ("NAS BT proxy", _nas_bt),
    "nas_cg": ("NAS CG proxy", _nas_cg),
    "nas_ep": ("NAS EP proxy", _nas_ep),
    "nas_ft": ("NAS FT proxy", _nas_ft),
    "nas_lu": ("NAS LU proxy", _nas_lu),
    "nas_mg": ("NAS MG proxy", _nas_mg),
}

#: Baselines plotted per paper figure (GA viruses are added by the
#: experiment drivers).
FIGURE_BASELINES: Dict[str, List[str]] = {
    "fig5_a15_power": ["coremark", "imdct", "fdct", "a15_manual_stress"],
    "fig6_a7_power": ["coremark", "imdct", "fdct", "a7_manual_stress"],
    "fig7_xgene2_temperature": [
        "bodytrack", "streamcluster", "canneal", "x264",
        "nas_bt", "nas_cg", "nas_ep", "nas_ft", "nas_lu", "nas_mg",
    ],
    "fig8_voltage_noise": [
        "idle_spin", "coremark", "linpack", "amd_stability_test", "prime95",
    ],
    "fig9_vmin": [
        "coremark", "linpack", "amd_stability_test", "prime95",
    ],
}


def workload_names() -> Tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


def workload(name: str, isa: str = "arm") -> Workload:
    """Build one baseline workload for the given ISA."""
    try:
        description, build = _BUILDERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(workload_names())}") from None
    body = build(isa).body()
    return Workload(name=name, isa=isa, description=description,
                    source=build_workload_source(isa, body))


def workloads(names, isa: str = "arm") -> List[Workload]:
    return [workload(name, isa) for name in names]
