"""Sqlite-backed run store (GeST-as-a-service persistence).

One sqlite file owns everything a long-running generation service
needs to remember: submitted runs and their lifecycle status, every
generation's stats record, the per-run winner source, the latest
resume checkpoint, a JSONL-style event log for ``gest tail``, and the
shared evaluation-cache tables
(:class:`~repro.store.sharedcache.SharedEvaluationCache`).

Design points, in the spirit of DAVOS's sqlite result handling:

* **WAL mode** — readers (``gest runs`` / ``gest tail``) never block
  the writing workers, and N worker threads/processes serialize their
  writes through sqlite's own file locking with a generous busy
  timeout rather than a hand-rolled lock file.
* **Schema versioned** — ``PRAGMA user_version`` stamps the schema;
  opening a store written by an incompatible build fails loudly
  instead of corrupting it.
* **Queue in the database** — submission is an INSERT, claiming is an
  atomic UPDATE inside one transaction, so any number of ``gest
  submit`` processes can feed any number of orchestrator workers with
  no other coordination channel.

Wall-clock timestamps recorded here are operator bookkeeping
(submitted/started/finished), never replayed into run state — runs
stay bit-reproducible, the ledger around them does not need to be.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from ..core.config import RunConfig, config_to_xml
from ..core.errors import ConfigError
from ..core.events import (CheckpointWritten, GenerationCompleted,
                           IndividualEvaluated, RunFinished, RunRecorder,
                           RunStarted)

__all__ = ["SCHEMA_VERSION", "RunStore", "RunRow", "StoreRecorder",
           "ensure_schema", "open_store_connection"]

#: ``PRAGMA user_version`` of the store schema this build reads/writes.
SCHEMA_VERSION = 1

#: Run lifecycle states, in rough order.
RUN_STATUSES = ("queued", "running", "finished", "failed", "cancelled")

_TABLES = """
CREATE TABLE IF NOT EXISTS runs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id           TEXT UNIQUE NOT NULL,
    status           TEXT NOT NULL,
    platform         TEXT NOT NULL,
    strategy         TEXT,
    seed             INTEGER,
    generations      INTEGER,
    config_xml       TEXT,
    config_blob      BLOB,
    submitted_at     REAL,
    started_at       REAL,
    finished_at      REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    best_fitness     REAL,
    best_uid         INTEGER,
    error            TEXT
);
CREATE TABLE IF NOT EXISTS generations (
    run_id       TEXT NOT NULL,
    number       INTEGER NOT NULL,
    best_fitness REAL,
    mean_fitness REAL,
    best_uid     INTEGER,
    stats_json   TEXT NOT NULL,
    PRIMARY KEY (run_id, number)
);
CREATE TABLE IF NOT EXISTS winners (
    run_id            TEXT PRIMARY KEY,
    uid               INTEGER,
    generation        INTEGER,
    fitness           REAL,
    measurements_json TEXT,
    source            TEXT
);
CREATE TABLE IF NOT EXISTS checkpoints (
    run_id     TEXT PRIMARY KEY,
    generation INTEGER NOT NULL,
    payload    BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    run_id  TEXT NOT NULL,
    seq     INTEGER NOT NULL,
    type    TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS cache_entries (
    fingerprint    TEXT NOT NULL,
    key            TEXT NOT NULL,
    measurements   TEXT NOT NULL,
    compile_failed INTEGER NOT NULL DEFAULT 0,
    screen_failed  INTEGER NOT NULL DEFAULT 0,
    created_by     TEXT,
    hits           INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (fingerprint, key)
);
CREATE TABLE IF NOT EXISTS cache_activity (
    run_id TEXT PRIMARY KEY,
    hits   INTEGER NOT NULL DEFAULT 0,
    misses INTEGER NOT NULL DEFAULT 0
);
"""


def _now() -> float:
    """Operator-facing wall-clock timestamp (never replayed)."""
    return time.time()  # staticcheck: disable=SC404


def ensure_schema(connection: sqlite3.Connection) -> None:
    """Create the store schema on a fresh database, or verify it.

    Raises :class:`ConfigError` when the file carries a different
    schema version — the store never silently migrates or overwrites.
    """
    version = connection.execute("PRAGMA user_version").fetchone()[0]
    if version == 0:
        connection.executescript(_TABLES)
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        connection.commit()
    elif version != SCHEMA_VERSION:
        raise ConfigError(
            f"result store has schema version {version}; this build "
            f"reads version {SCHEMA_VERSION} — use a matching build or "
            "start a fresh store file")


def open_store_connection(path: Union[str, Path]) -> sqlite3.Connection:
    """Open (and initialize) a store database: WAL, busy timeout."""
    # check_same_thread=False: handles are used by one thread at a time
    # but may be *created* on a different one (thread-pool dispatch);
    # concurrent access is still serialized through sqlite's locking.
    connection = sqlite3.connect(str(path), timeout=30.0,
                                 check_same_thread=False)
    connection.execute("PRAGMA journal_mode=WAL")
    connection.execute("PRAGMA busy_timeout=30000")
    connection.execute("PRAGMA synchronous=NORMAL")
    ensure_schema(connection)
    return connection


@dataclass(frozen=True)
class RunRow:
    """One run's ledger entry."""

    run_id: str
    status: str
    platform: str
    strategy: Optional[str]
    seed: Optional[int]
    generations: Optional[int]
    config_xml: Optional[str]
    submitted_at: Optional[float]
    started_at: Optional[float]
    finished_at: Optional[float]
    cancel_requested: bool
    best_fitness: Optional[float]
    best_uid: Optional[int]
    error: Optional[str]


_RUN_COLUMNS = ("run_id, status, platform, strategy, seed, generations, "
                "config_xml, submitted_at, started_at, finished_at, "
                "cancel_requested, best_fitness, best_uid, error")


class RunStore:
    """Handle on one store database.

    A store object is cheap and **single-threaded**: every thread or
    process that touches the database constructs its own.  Concurrency
    is sqlite's problem (WAL + busy timeout), not this class's.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection ---------------------------------------------------------

    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = open_store_connection(self.path)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission / queue -------------------------------------------------

    def submit_run(self, config: RunConfig, platform: str,
                   strategy: Optional[str] = None,
                   seed: Optional[int] = None,
                   generations: Optional[int] = None) -> str:
        """Enqueue a run; returns its store-assigned ``run-NNNNNN`` id.

        The parsed configuration is pickled whole (library, template,
        parameters) so the executing worker needs no access to the
        submitting user's files; the XML rendering rides along for
        human inspection via ``gest runs``.
        """
        if seed is not None:
            config.ga.seed = seed
        conn = self.connection()
        blob = pickle.dumps(config, protocol=4)
        xml = config_to_xml(config, template_filename="template.s",
                            results_dir="results")
        with conn:
            cursor = conn.execute(
                "INSERT INTO runs (run_id, status, platform, strategy, "
                "seed, generations, config_xml, config_blob, submitted_at) "
                "VALUES ('', 'queued', ?, ?, ?, ?, ?, ?, ?)",
                (platform, strategy, config.ga.seed, generations, xml,
                 blob, _now()))
            run_id = f"run-{cursor.lastrowid:06d}"
            conn.execute("UPDATE runs SET run_id = ? WHERE id = ?",
                         (run_id, cursor.lastrowid))
        return run_id

    def claim_next(self) -> Optional[str]:
        """Atomically move the oldest queued run to ``running``.

        Safe against racing claimers: the SELECT and UPDATE share one
        immediate transaction, so each queued run is handed to exactly
        one worker.
        """
        conn = self.connection()
        try:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT run_id FROM runs WHERE status = 'queued' "
                "ORDER BY id LIMIT 1").fetchone()
            if row is None:
                conn.execute("ROLLBACK")
                return None
            conn.execute(
                "UPDATE runs SET status = 'running', started_at = ? "
                "WHERE run_id = ?", (_now(), row[0]))
            conn.execute("COMMIT")
        except sqlite3.Error:
            conn.execute("ROLLBACK")
            raise
        return row[0]

    def requeue_interrupted(self) -> List[str]:
        """Crash recovery: put ``running`` leftovers back in the queue.

        A run that was mid-flight when the previous orchestrator died
        still holds status ``running``; re-queue it so the next worker
        resumes it from its stored checkpoint (or from scratch when no
        checkpoint was reached).
        """
        conn = self.connection()
        with conn:
            rows = conn.execute(
                "SELECT run_id FROM runs WHERE status = 'running' "
                "ORDER BY id").fetchall()
            conn.execute(
                "UPDATE runs SET status = 'queued' "
                "WHERE status = 'running'")
        return [row[0] for row in rows]

    # -- run rows -----------------------------------------------------------

    def _row(self, raw: Tuple) -> RunRow:
        return RunRow(run_id=raw[0], status=raw[1], platform=raw[2],
                      strategy=raw[3], seed=raw[4], generations=raw[5],
                      config_xml=raw[6], submitted_at=raw[7],
                      started_at=raw[8], finished_at=raw[9],
                      cancel_requested=bool(raw[10]), best_fitness=raw[11],
                      best_uid=raw[12], error=raw[13])

    def get_run(self, run_id: str) -> RunRow:
        raw = self.connection().execute(
            f"SELECT {_RUN_COLUMNS} FROM runs WHERE run_id = ?",
            (run_id,)).fetchone()
        if raw is None:
            raise ConfigError(f"no run {run_id!r} in store {self.path}")
        return self._row(raw)

    def list_runs(self, status: Optional[str] = None) -> List[RunRow]:
        if status is not None and status not in RUN_STATUSES:
            raise ConfigError(
                f"unknown run status {status!r}; expected one of "
                f"{', '.join(RUN_STATUSES)}")
        conn = self.connection()
        if status is None:
            rows = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs ORDER BY id").fetchall()
        else:
            rows = conn.execute(
                f"SELECT {_RUN_COLUMNS} FROM runs WHERE status = ? "
                "ORDER BY id", (status,)).fetchall()
        return [self._row(raw) for raw in rows]

    def load_config(self, run_id: str) -> RunConfig:
        raw = self.connection().execute(
            "SELECT config_blob FROM runs WHERE run_id = ?",
            (run_id,)).fetchone()
        if raw is None:
            raise ConfigError(f"no run {run_id!r} in store {self.path}")
        if raw[0] is None:
            raise ConfigError(f"run {run_id!r} carries no configuration")
        return pickle.loads(raw[0])

    # -- lifecycle ----------------------------------------------------------

    def finish_run(self, run_id: str, best_uid: Optional[int],
                   best_fitness: Optional[float],
                   cancelled: bool = False) -> None:
        status = "cancelled" if cancelled else "finished"
        with self.connection() as conn:
            conn.execute(
                "UPDATE runs SET status = ?, finished_at = ?, "
                "best_uid = ?, best_fitness = ? WHERE run_id = ?",
                (status, _now(), best_uid, best_fitness, run_id))

    def fail_run(self, run_id: str, error: str) -> None:
        with self.connection() as conn:
            conn.execute(
                "UPDATE runs SET status = 'failed', finished_at = ?, "
                "error = ? WHERE run_id = ?", (_now(), error, run_id))

    def request_cancel(self, run_id: str) -> None:
        """Flag a run for cooperative cancellation.

        A queued run is cancelled outright; a running one is stopped by
        the engine's ``stop_check`` at the next generation boundary.
        """
        self.get_run(run_id)  # loud error for unknown ids
        with self.connection() as conn:
            conn.execute(
                "UPDATE runs SET cancel_requested = 1 WHERE run_id = ?",
                (run_id,))
            conn.execute(
                "UPDATE runs SET status = 'cancelled', finished_at = ? "
                "WHERE run_id = ? AND status = 'queued'",
                (_now(), run_id))

    def cancel_requested(self, run_id: str) -> bool:
        raw = self.connection().execute(
            "SELECT cancel_requested FROM runs WHERE run_id = ?",
            (run_id,)).fetchone()
        return bool(raw and raw[0])

    # -- per-generation data ------------------------------------------------

    def record_generation(self, run_id: str, stats: dict) -> None:
        """Upsert one generation's stats record (idempotent on resume)."""
        with self.connection() as conn:
            conn.execute(
                "INSERT INTO generations (run_id, number, best_fitness, "
                "mean_fitness, best_uid, stats_json) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (run_id, number) DO UPDATE SET "
                "best_fitness = excluded.best_fitness, "
                "mean_fitness = excluded.mean_fitness, "
                "best_uid = excluded.best_uid, "
                "stats_json = excluded.stats_json",
                (run_id, stats.get("number"), stats.get("best_fitness"),
                 stats.get("mean_fitness"), stats.get("best_uid"),
                 json.dumps(stats, sort_keys=True)))

    def generations(self, run_id: str) -> List[dict]:
        rows = self.connection().execute(
            "SELECT stats_json FROM generations WHERE run_id = ? "
            "ORDER BY number", (run_id,)).fetchall()
        return [json.loads(raw[0]) for raw in rows]

    # -- winners ------------------------------------------------------------

    def record_winner(self, run_id: str, uid: int, generation: int,
                      fitness: float, measurements: List[float],
                      source: str) -> None:
        with self.connection() as conn:
            conn.execute(
                "INSERT INTO winners (run_id, uid, generation, fitness, "
                "measurements_json, source) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (run_id) DO UPDATE SET "
                "uid = excluded.uid, generation = excluded.generation, "
                "fitness = excluded.fitness, "
                "measurements_json = excluded.measurements_json, "
                "source = excluded.source",
                (run_id, uid, generation, fitness,
                 json.dumps(list(measurements)), source))

    def winner(self, run_id: str) -> Optional[dict]:
        raw = self.connection().execute(
            "SELECT uid, generation, fitness, measurements_json, source "
            "FROM winners WHERE run_id = ?", (run_id,)).fetchone()
        if raw is None:
            return None
        return {"uid": raw[0], "generation": raw[1], "fitness": raw[2],
                "measurements": json.loads(raw[3]), "source": raw[4]}

    # -- checkpoints --------------------------------------------------------

    def save_checkpoint(self, run_id: str, generation: int,
                        payload: bytes) -> None:
        with self.connection() as conn:
            conn.execute(
                "INSERT INTO checkpoints (run_id, generation, payload) "
                "VALUES (?, ?, ?) ON CONFLICT (run_id) DO UPDATE SET "
                "generation = excluded.generation, "
                "payload = excluded.payload",
                (run_id, generation, payload))

    def load_checkpoint(self, run_id: str) -> Optional[Tuple[int, bytes]]:
        raw = self.connection().execute(
            "SELECT generation, payload FROM checkpoints "
            "WHERE run_id = ?", (run_id,)).fetchone()
        if raw is None:
            return None
        return int(raw[0]), raw[1]

    # -- event log ----------------------------------------------------------

    def record_event(self, run_id: str, event_type: str,
                     payload: dict) -> int:
        """Append one event; returns its per-run sequence number."""
        conn = self.connection()
        with conn:
            conn.execute(
                "INSERT INTO events (run_id, seq, type, payload) VALUES "
                "(?, COALESCE((SELECT MAX(seq) + 1 FROM events "
                "WHERE run_id = ?), 0), ?, ?)",
                (run_id, run_id, event_type,
                 json.dumps(payload, sort_keys=True)))
            seq = conn.execute(
                "SELECT MAX(seq) FROM events WHERE run_id = ?",
                (run_id,)).fetchone()[0]
        return int(seq)

    def events(self, run_id: str,
               after_seq: int = -1) -> List[Tuple[int, str, dict]]:
        rows = self.connection().execute(
            "SELECT seq, type, payload FROM events WHERE run_id = ? "
            "AND seq > ? ORDER BY seq", (run_id, after_seq)).fetchall()
        return [(int(raw[0]), raw[1], json.loads(raw[2])) for raw in rows]

    # -- cache activity (see sharedcache.py) --------------------------------

    def add_cache_activity(self, run_id: str, hits: int,
                           misses: int) -> None:
        with self.connection() as conn:
            conn.execute(
                "INSERT INTO cache_activity (run_id, hits, misses) "
                "VALUES (?, ?, ?) ON CONFLICT (run_id) DO UPDATE SET "
                "hits = hits + excluded.hits, "
                "misses = misses + excluded.misses",
                (run_id, hits, misses))

    def cache_activity(self, run_id: str) -> Tuple[int, int]:
        raw = self.connection().execute(
            "SELECT hits, misses FROM cache_activity WHERE run_id = ?",
            (run_id,)).fetchone()
        if raw is None:
            return 0, 0
        return int(raw[0]), int(raw[1])


class StoreRecorder(RunRecorder):
    """Engine-event subscriber that persists a run into a
    :class:`RunStore`.

    One recorder serves one executing run; it opens its own store
    handle so it can live on the worker thread that drives the engine.
    The mapping:

    * ``run_started``        → run row refresh + event
    * ``individual_evaluated`` → winner upsert when the run's best improves
    * ``generation_completed`` → generation row + event
    * ``checkpoint_written`` → checkpoint blob upsert + event
    * ``run_finished``       → event (final status is the executor's
      call — it knows whether the run finished, failed or was
      cancelled)
    """

    def __init__(self, store: Union[RunStore, str, Path]) -> None:
        self.store = store if isinstance(store, RunStore) \
            else RunStore(store)
        self._winner_fitness: Optional[float] = None

    def close(self) -> None:
        self.store.close()

    # -- hooks --------------------------------------------------------------

    def on_run_started(self, event: RunStarted) -> None:
        self.store.record_event(event.run_id, "run_started", {
            "strategy": event.strategy,
            "seed": event.seed,
            "resumed": event.resumed,
        })

    def on_individual_evaluated(self, event: IndividualEvaluated) -> None:
        individual = event.individual
        if individual.fitness is None:
            return
        if self._winner_fitness is None:
            stored = self.store.winner(event.run_id)
            self._winner_fitness = stored["fitness"] if stored \
                else float("-inf")
        if individual.fitness > self._winner_fitness:
            self._winner_fitness = individual.fitness
            self.store.record_winner(
                event.run_id, uid=individual.uid,
                generation=individual.generation,
                fitness=individual.fitness,
                measurements=list(individual.measurements),
                source=event.source)

    def on_generation_completed(self, event: GenerationCompleted) -> None:
        self.store.record_generation(event.run_id, event.stats)
        self.store.record_event(event.run_id, "generation_completed",
                                event.stats)

    def on_checkpoint_written(self, event: CheckpointWritten) -> None:
        payload = Path(event.path).read_bytes()
        self.store.save_checkpoint(event.run_id, event.generation, payload)
        self.store.record_event(event.run_id, "checkpoint_written", {
            "generation": event.generation,
            "bytes": len(payload),
        })

    def on_run_finished(self, event: RunFinished) -> None:
        best = event.best
        self.store.record_event(event.run_id, "run_finished", {
            "generations": event.generations,
            "cancelled": event.cancelled,
            "best_uid": best.uid if best is not None else None,
            "best_fitness": best.fitness if best is not None else None,
        })
