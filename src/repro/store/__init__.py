"""Sqlite-backed result store (GeST-as-a-service persistence layer).

Everything a long-running generation service needs to remember lives
in one WAL-mode, schema-versioned sqlite file:

* :class:`RunStore` — the ledger: submitted runs and their lifecycle,
  per-generation stats, winner sources, resume checkpoints, and the
  per-run event log that ``gest tail`` streams;
* :class:`StoreRecorder` — the engine-event subscriber
  (:mod:`repro.core.events`) that writes a live run into the store;
* :class:`SharedEvaluationCache` — the store-backed evaluation-cache
  backend, sharing content-addressed entries safely across concurrent
  runs.

The store is deliberately independent of the service layer: batch
scripts can submit, query and ingest runs without an orchestrator, and
:mod:`repro.service` is just one consumer.
"""

from .runstore import (SCHEMA_VERSION, RunRow, RunStore, StoreRecorder,
                       ensure_schema, open_store_connection)
from .sharedcache import SharedEvaluationCache

__all__ = [
    "SCHEMA_VERSION", "RunRow", "RunStore", "StoreRecorder",
    "ensure_schema", "open_store_connection", "SharedEvaluationCache",
]
