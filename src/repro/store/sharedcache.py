"""Sqlite-backed shared evaluation cache.

The JSON :class:`~repro.evaluation.cache.EvaluationCache` memoises one
process's evaluations; a *service* wants concurrent runs — often of
the same config with different strategies or seeds — to share
content-addressed entries.  This backend keeps the entries in the
result store's ``cache_entries`` table (same addressing:
``sha256(fingerprint ‖ rendered source)``) so every run against the
same platform/measurement setup reads and writes one pool.

Concurrency is delegated to sqlite's file locking: a ``put`` is a
single ``INSERT ... ON CONFLICT DO NOTHING`` — first writer wins, and
because evaluations are pure functions of the key (the determinism
contract of :mod:`repro.evaluation.pipeline`), racing writers carry
identical values, so "lost" duplicate writes lose nothing.  Hits are
accounted twice: per entry (``hits`` column) and per run
(``cache_activity`` table, flushed on :meth:`close`), so operators can
see exactly how much measurement each run saved.

The driver-side cache protocol (``get``/``put``/``hits``/``misses``)
is inherited from :class:`EvaluationCache`, so a
:class:`~repro.evaluation.evaluator.StagedEvaluator` uses either
interchangeably; only the storage moves from a dict to the database.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from ..core.errors import ConfigError
from ..evaluation.cache import CachedEvaluation, EvaluationCache
from .runstore import open_store_connection

__all__ = ["SharedEvaluationCache"]


class SharedEvaluationCache(EvaluationCache):
    """Content-addressed evaluation cache living in a store database.

    Parameters
    ----------
    path:
        The sqlite store file.  A bare path works standalone (the
        schema is created on first touch); pointing several runs —
        threads or whole processes — at one file is the intended use.
    fingerprint:
        Same meaning as for :class:`EvaluationCache`: entries are
        namespaced by it, so runs against different platforms or
        measurement setups never cross-pollinate.
    run_id:
        When set, this run's hit/miss totals are flushed into the
        ``cache_activity`` table on :meth:`close`.
    """

    def __init__(self, path: Union[str, Path], fingerprint: str = "",
                 run_id: Optional[str] = None) -> None:
        super().__init__(fingerprint)
        self.path = Path(path)
        self.run_id = run_id
        self._conn: Optional[sqlite3.Connection] = None
        self._flushed_hits = 0
        self._flushed_misses = 0

    # -- connection ---------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        """Lazy connect: safe to construct in one thread/process and
        use in another (the service builds the cache object before
        handing the run to a worker thread)."""
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = open_store_connection(self.path)
        return self._conn

    def close(self) -> None:
        self.flush_activity()
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    # -- cache protocol -----------------------------------------------------

    def __len__(self) -> int:
        raw = self._connection().execute(
            "SELECT COUNT(*) FROM cache_entries WHERE fingerprint = ?",
            (self.fingerprint,)).fetchone()
        return int(raw[0])

    def get(self, source_text: str) -> Optional[CachedEvaluation]:
        key = self.key(source_text)
        conn = self._connection()
        raw = conn.execute(
            "SELECT measurements, compile_failed, screen_failed "
            "FROM cache_entries WHERE fingerprint = ? AND key = ?",
            (self.fingerprint, key)).fetchone()
        if raw is None:
            self.misses += 1
            return None
        self.hits += 1
        with conn:
            conn.execute(
                "UPDATE cache_entries SET hits = hits + 1 "
                "WHERE fingerprint = ? AND key = ?",
                (self.fingerprint, key))
        return CachedEvaluation(
            measurements=tuple(float(m) for m in json.loads(raw[0])),
            compile_failed=bool(raw[1]), screen_failed=bool(raw[2]))

    def put(self, source_text: str, entry: CachedEvaluation) -> None:
        conn = self._connection()
        with conn:
            conn.execute(
                "INSERT INTO cache_entries (fingerprint, key, "
                "measurements, compile_failed, screen_failed, created_by) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT (fingerprint, key) DO NOTHING",
                (self.fingerprint, self.key(source_text),
                 json.dumps(list(entry.measurements)),
                 int(entry.compile_failed), int(entry.screen_failed),
                 self.run_id))

    def iter_entries(self) -> Iterator[Tuple[str, CachedEvaluation]]:
        """Bulk-read every entry under this fingerprint: one SELECT for
        the whole namespace, in sorted key order.

        The surrogate strategy's warm start snapshots the cache through
        this — with the per-``get`` protocol it would issue one SELECT
        (plus a hit-count UPDATE) per offspring.  Rows stream from a
        dedicated cursor, so interleaved ``get``/``put`` calls on the
        connection are safe; hit accounting is untouched (a snapshot is
        not a lookup).
        """
        cursor = self._connection().execute(
            "SELECT key, measurements, compile_failed, screen_failed "
            "FROM cache_entries WHERE fingerprint = ? ORDER BY key",
            (self.fingerprint,))
        for key, measurements, compile_failed, screen_failed in cursor:
            yield key, CachedEvaluation(
                measurements=tuple(float(m)
                                   for m in json.loads(measurements)),
                compile_failed=bool(compile_failed),
                screen_failed=bool(screen_failed))

    # -- accounting ---------------------------------------------------------

    def flush_activity(self) -> None:
        """Add this instance's hit/miss deltas to ``cache_activity``.

        Idempotent across calls: only the counts accumulated since the
        previous flush are written, so a mid-run flush plus the close
        flush never double-count.
        """
        if self.run_id is None or self._conn is None:
            return
        delta_hits = self.hits - self._flushed_hits
        delta_misses = self.misses - self._flushed_misses
        if not delta_hits and not delta_misses:
            return
        with self._conn:
            self._conn.execute(
                "INSERT INTO cache_activity (run_id, hits, misses) "
                "VALUES (?, ?, ?) ON CONFLICT (run_id) DO UPDATE SET "
                "hits = hits + excluded.hits, "
                "misses = misses + excluded.misses",
                (self.run_id, delta_hits, delta_misses))
        self._flushed_hits = self.hits
        self._flushed_misses = self.misses

    # -- JSON persistence does not apply ------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        raise ConfigError(
            "a SharedEvaluationCache persists through its database; "
            "there is no JSON file to save")

    @classmethod
    def load(cls, path: Union[str, Path],
             fingerprint: str = "") -> "EvaluationCache":
        raise ConfigError(
            "a SharedEvaluationCache persists through its database; "
            "open it with SharedEvaluationCache(path, fingerprint)")
