// GeST-repro stock ARM-like template
mov x0, #1000000
mov x10, #4096
mov x11, #8192
mov x1, #0xaaaaaaaaaaaaaaaa
mov x2, #0x5555555555555555
mov x3, #0xaaaaaaaaaaaaaaaa
mov x4, #0x5555555555555555
mov x5, #0xaaaaaaaaaaaaaaaa
mov x6, #0x5555555555555555
mov x7, #0xaaaaaaaaaaaaaaaa
mov x8, #0x5555555555555555
mov x9, #0xaaaaaaaaaaaaaaaa
fmov v0, #0x5555555555555555
fmov v1, #0xaaaaaaaaaaaaaaaa
fmov v2, #0x5555555555555555
fmov v3, #0xaaaaaaaaaaaaaaaa
fmov v4, #0x5555555555555555
fmov v5, #0xaaaaaaaaaaaaaaaa
fmov v6, #0x5555555555555555
fmov v7, #0xaaaaaaaaaaaaaaaa
fmov v8, #0x5555555555555555
fmov v9, #0xaaaaaaaaaaaaaaaa
fmov v10, #0x5555555555555555
fmov v11, #0xaaaaaaaaaaaaaaaa
fmov v12, #0x5555555555555555
fmov v13, #0xaaaaaaaaaaaaaaaa
fmov v14, #0x5555555555555555
fmov v15, #0xaaaaaaaaaaaaaaaa
.loop
loop_begin:
#loop_code
subs x0, x0, #1
bne loop_begin
.endloop
