// GeST-repro stock x86-like template
mov r15, 1000000
mov rbp, 4096
mov r8, 8192
mov rax, 0x5555555555555555
mov rbx, 0xaaaaaaaaaaaaaaaa
mov rcx, 0x5555555555555555
mov rdx, 0xaaaaaaaaaaaaaaaa
mov rsi, 0x5555555555555555
mov rdi, 0xaaaaaaaaaaaaaaaa
mov r9, 0x5555555555555555
mov r10, 0xaaaaaaaaaaaaaaaa
mov r11, 0x5555555555555555
movaps xmm0, 0x5555555555555555
movaps xmm1, 0xaaaaaaaaaaaaaaaa
movaps xmm2, 0x5555555555555555
movaps xmm3, 0xaaaaaaaaaaaaaaaa
movaps xmm4, 0x5555555555555555
movaps xmm5, 0xaaaaaaaaaaaaaaaa
movaps xmm6, 0x5555555555555555
movaps xmm7, 0xaaaaaaaaaaaaaaaa
movaps xmm8, 0x5555555555555555
movaps xmm9, 0xaaaaaaaaaaaaaaaa
movaps xmm10, 0x5555555555555555
movaps xmm11, 0xaaaaaaaaaaaaaaaa
movaps xmm12, 0x5555555555555555
movaps xmm13, 0xaaaaaaaaaaaaaaaa
movaps xmm14, 0x5555555555555555
movaps xmm15, 0xaaaaaaaaaaaaaaaa
.loop
loop_begin:
#loop_code
dec r15
jnz loop_begin
.endloop
