"""Figure 5: Cortex-A15 power results.

Paper shape: the GA virus causes the highest power, above the manually
written stress test and well above coremark/imdct/fdct; the Cortex-A7
virus is *not* a good Cortex-A15 stress test.
"""

from repro.experiments import figure5

from conftest import run_once


def test_fig5_a15_power(benchmark, power_scale):
    result = run_once(benchmark, figure5, scale=power_scale)

    print("\n" + result.render())

    normalized = result.normalized
    native = result.native_virus_label        # GA_virus_cortex_a15
    cross = result.cross_virus_label          # GA_virus_cortex_a7

    # The GA virus tops the chart...
    assert normalized[native] == max(normalized.values())
    # ...beating the hand-written stress test by a clear margin
    # (paper: "exceed the fitness of the worst-case workload or
    # manually-written stress-test by at least 10%" across platforms;
    # we require >6% here at scaled-down search effort).
    assert result.virus_margin_over_manual() > 1.06
    # ...and beats the conventional workloads much harder.
    for name in ("coremark", "imdct", "fdct"):
        assert normalized[native] > normalized[name] * 1.25

    # Cross-evaluation: the A7 virus is mediocre on the A15 — below the
    # manual stress test and far below the native virus.
    assert normalized[cross] < normalized["a15_manual_stress"]
    assert normalized[cross] < normalized[native] * 0.9

    # Normalisation sanity: coremark is the 1.0 reference.
    assert abs(normalized["coremark"] - 1.0) < 1e-9
