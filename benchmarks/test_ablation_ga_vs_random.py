"""Ablation: GA search vs random sampling at equal budget.

The paper takes GA search as the established basis for stress-test
generation ("Previous work has shown that GAs can generate workloads
that stress the system worse or comparably to manually written
stress-tests with little human guidance") — this control quantifies
what the GA's operators actually contribute over simply measuring the
same number of random individuals and keeping the best.
"""

from repro.core.individual import random_individual
from repro.core.rng import make_rng
from repro.core.template import Template
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.experiments import GAScale, evolve_virus
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement

from conftest import run_once

SCALE = GAScale(population_size=20, generations=25)   # 500 evaluations


def _random_search(budget: int, seed: int) -> float:
    machine = SimulatedMachine("cortex_a15", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    measurement = PowerMeasurement(target, {"samples": str(SCALE.samples)})
    library = arm_library()
    rng = make_rng(seed)
    template = Template(arm_template())
    best = 0.0
    for _ in range(budget):
        individual = random_individual(library, SCALE.individual_size,
                                       rng)
        source = template.instantiate(individual.render_body())
        best = max(best, measurement.measure(source, individual)[0])
    return best


def _compare():
    budget = SCALE.population_size * SCALE.generations
    ga = evolve_virus("cortex_a15", "power", seed=7, scale=SCALE,
                      use_cache=False)
    random_best = _random_search(budget, seed=7)
    return ga.fitness, random_best, budget


def test_ablation_ga_vs_random_search(benchmark):
    ga_best, random_best, budget = run_once(benchmark, _compare)

    print(f"\n{budget} evaluations each (single-core W): "
          f"GA {ga_best:.3f} vs random search {random_best:.3f} "
          f"(GA advantage x{ga_best / random_best:.3f})")

    # The GA's selection/crossover/mutation machinery beats blind
    # sampling of the same search space at the same cost.
    assert ga_best > random_best * 1.03
