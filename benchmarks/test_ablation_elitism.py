"""Ablation: elitism (Table I lists it among the defaults).

With elitism the best individual is promoted unchanged, so the
best-fitness series is (noise-tolerance) monotone; without it the
series regresses when crossover/mutation destroy the champion.
"""

from repro.analysis.convergence import is_monotonic
from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement

from conftest import run_once

SEEDS = (3, 4, 5)


def _series(elitism, seed, scale):
    machine = SimulatedMachine("cortex_a15", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=scale.effective_mutation_rate(),
                      elitism=elitism,
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    engine = GeneticEngine(config,
                           PowerMeasurement(target, {"samples": "4"}),
                           DefaultFitness())
    return engine.run().best_fitness_series()


def _ablation(scale):
    return {
        True: [_series(True, s, scale) for s in SEEDS],
        False: [_series(False, s, scale) for s in SEEDS],
    }


def test_ablation_elitism(benchmark, ablation_scale):
    series = run_once(benchmark, _ablation, ablation_scale)

    final_with = sum(s[-1] for s in series[True]) / len(SEEDS)
    final_without = sum(s[-1] for s in series[False]) / len(SEEDS)
    print(f"\nmean final best power: elitism={final_with:.3f}W  "
          f"no-elitism={final_without:.3f}W")

    # With elitism every seed's best-fitness series is monotone up to
    # measurement noise (bare-metal power noise is ~0.2%).
    for s in series[True]:
        assert is_monotonic(s, tolerance=0.01 * s[-1])

    # And elitism does not hurt the final result.
    assert final_with >= final_without * 0.98
