"""Table V: comparison of GA stress-test generation frameworks.

Static scholarship regenerated verbatim, with the paper's positioning
claims checked against the data.
"""

from repro.analysis.related_work import RELATED_WORK, related_work_table

from conftest import run_once


def test_table5_related_work(benchmark):
    table = run_once(benchmark, related_work_table)

    print("\n" + table)

    by_name = {e.framework: e for e in RELATED_WORK}

    # All five frameworks of the paper's Table V.
    assert set(by_name) == {"AUDIT", "MAMPO", "Joshi et al.",
                            "Powermark", "GeST"}

    # Row facts.
    assert by_name["AUDIT"].optimization_type == "Instruction-Level"
    assert by_name["MAMPO"].evaluated_on == "Simulator"
    assert by_name["Powermark"].optimization_language == "C"
    assert by_name["Powermark"].component_stressed == "Full-System"
    assert by_name["GeST"].references == "this work"

    # Positioning: GeST is the only framework that is instruction-level,
    # evaluated on real hardware only, and covers both dI/dt and power.
    gest_like = [e for e in RELATED_WORK
                 if e.optimization_type == "Instruction-Level"
                 and e.evaluated_on == "Real-Hardware"
                 and {"dI/dt", "power"} <= set(e.metrics_evaluated)]
    assert [e.framework for e in gest_like] == ["GeST"]
