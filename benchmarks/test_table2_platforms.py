"""Table II: experimental details — the four platforms.

Regenerates the platform table from the presets and checks each row's
facts: CPU, core count, execution environment, the stress-test type
developed on it and the measurement instrument modelled for it.
"""

from repro.cpu.microarch import PRESETS
from repro.experiments.common import MEASUREMENTS, make_machine

from conftest import run_once

#: The paper's Table II, as data.
TABLE2 = [
    # preset        cores  environment   stress-test developed
    ("cortex_a15",  2,     "bare_metal", ("power",),
     "ARM energy probe -> PowerMeasurement"),
    ("cortex_a7",   3,     "bare_metal", ("power",),
     "ARM energy probe -> PowerMeasurement"),
    ("xgene2",      8,     "os",         ("temperature", "ipc"),
     "i2c temperature sensor + perf -> Temperature/IPCMeasurement"),
    ("athlon_x4",   4,     "os",         ("didt",),
     "external oscilloscope -> OscilloscopeMeasurement"),
]


def _collect():
    rows = []
    for preset, cores, environment, metrics, instrument in TABLE2:
        machine = make_machine(preset)
        rows.append({
            "preset": preset,
            "arch": machine.arch,
            "environment": machine.environment,
            "expected_cores": cores,
            "expected_environment": environment,
            "metrics": metrics,
            "instrument": instrument,
        })
    return rows


def test_table2_experimental_details(benchmark):
    rows = run_once(benchmark, _collect)

    print("\nExperimental details (paper Table II):")
    print(f"{'CPU':12s} {'cores':>5s}  {'environment':11s}  "
          f"{'stress-test':18s}  instrument")
    for row in rows:
        print(f"{row['preset']:12s} {row['arch'].core_count:5d}  "
              f"{row['environment']:11s}  "
              f"{'/'.join(row['metrics']):18s}  {row['instrument']}")

    for row in rows:
        arch = row["arch"]
        # Core counts straight from Table II.
        assert arch.core_count == row["expected_cores"]
        # Bare-metal ARM dev boards vs OS server/desktop.
        assert row["environment"] == row["expected_environment"]
        # Every stress-test type developed on the platform has a
        # measurement class registered.
        for metric in row["metrics"]:
            assert metric in MEASUREMENTS

    # ISA split: the AMD desktop is the x86 platform, the rest ARM.
    assert PRESETS["athlon_x4"].isa == "x86"
    assert all(PRESETS[p].isa == "arm"
               for p in ("cortex_a15", "cortex_a7", "xgene2"))
