"""Evaluation-layer throughput: serial vs process-pool vs cache.

Writes ``BENCH_evaluation.json`` next to the repo root with
individuals/second for the serial backend and 2- and 4-worker process
pools, plus the cache hit rate of a seeded-population rerun.  Numbers
are measured honestly on whatever hardware runs the benchmark — the
pool backends can only beat serial when ``os.cpu_count()`` grants real
parallelism, so the JSON records the core count alongside the rates.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from conftest import run_once

from repro.core.config import parse_config_file
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.cpu.cache import MemoryHierarchy
from repro.evaluation import (EvaluationCache, ProcessPoolBackend,
                              SerialBackend)
from repro.evaluation.backends import _run_job
from repro.evaluation.pipeline import EmptyMeasurementError
from repro.fitness.default_fitness import DefaultFitness
from repro.measurement.power import PowerMeasurement

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG = REPO_ROOT / "configs" / "arm_power" / "config.xml"
OUTPUT = REPO_ROOT / "BENCH_evaluation.json"

POPULATION = 16
GENERATIONS = 4


class PerJobPoolBackend(ProcessPoolBackend):
    """The pre-chunking dispatch strategy: one IPC round trip per
    individual.  Kept here as the baseline for the dispatch-overhead
    comparison — the chunked backend replaced it precisely because at
    simulator evaluation rates the round trips dominated the work."""

    def evaluate(self, pipeline, jobs):
        if not jobs:
            return []
        pool = self._ensure_pool(pipeline)
        results = []
        for item in pool.imap(_run_job, list(jobs), chunksize=1):
            results.append(item)
            if isinstance(item, EmptyMeasurementError):
                break
        return results


def _engine(backend=None, cache=None):
    config = parse_config_file(CONFIG)
    config.ga.population_size = POPULATION
    config.ga.generations = GENERATIONS
    # A memory hierarchy makes every evaluation pay the full
    # cycle-by-cycle simulation (striding addresses defeat steady-state
    # tiling) — the honest worst case, and the regime where parallel
    # evaluation matters most.
    machine = SimulatedMachine("cortex_a15", seed=config.ga.seed or 0,
                               sim_cycles=600,
                               hierarchy=MemoryHierarchy())
    target = SimulatedTarget(machine)
    target.connect()
    measurement = PowerMeasurement(target, {"samples": "2"})
    return GeneticEngine(config, measurement, DefaultFitness(),
                         backend=backend, cache=cache)


def _timed_run(backend=None, cache=None):
    engine = _engine(backend=backend, cache=cache)
    began = perf_counter()
    history = engine.run()
    elapsed = perf_counter() - began
    individuals = POPULATION * GENERATIONS
    return {
        "individuals": individuals,
        "seconds": round(elapsed, 4),
        "individuals_per_second": round(individuals / elapsed, 2),
        "best_fitness": history.best_fitness_series()[-1],
    }


def test_bench_evaluation_throughput(benchmark):
    results = {
        "config": str(CONFIG.relative_to(REPO_ROOT)),
        "population_size": POPULATION,
        "generations": GENERATIONS,
        "cpu_count": os.cpu_count(),
        "backends": {},
    }

    results["backends"]["serial"] = _timed_run(SerialBackend())
    for workers in (2, 4):
        results["backends"][f"pool_{workers}"] = _timed_run(
            ProcessPoolBackend(workers))
    results["backends"]["pool_4_per_job"] = _timed_run(
        PerJobPoolBackend(4))

    serial_rate = results["backends"]["serial"]["individuals_per_second"]
    for key in ("pool_2", "pool_4", "pool_4_per_job"):
        pooled = results["backends"][key]
        pooled["speedup_vs_serial"] = round(
            pooled["individuals_per_second"] / serial_rate, 3)

    # Every backend must land on the same search trajectory.
    fitnesses = {v["best_fitness"] for v in results["backends"].values()}
    assert len(fitnesses) == 1, \
        f"backends diverged: {results['backends']}"

    # The dispatch fix itself, measured independently of core count:
    # one round trip per worker chunk must beat one per individual.
    chunked = results["backends"]["pool_4"]["individuals_per_second"]
    per_job = results["backends"]["pool_4_per_job"][
        "individuals_per_second"]
    results["dispatch_speedup_chunked_vs_per_job"] = round(
        chunked / per_job, 3)
    assert chunked >= per_job, (
        f"chunked dispatch ({chunked} ind/s) regressed below per-job "
        f"dispatch ({per_job} ind/s)")

    # True parallel speedup needs real cores; on starved CI boxes the
    # pool can only tie serial, so the wall-clock gate is conditional.
    if (os.cpu_count() or 1) >= 4:
        assert results["backends"]["pool_4"]["speedup_vs_serial"] >= 1.5, \
            f"pool_4 must beat serial by 1.5x: {results['backends']}"

    # Cache hit rate on a seeded-population rerun: the second engine
    # shares the first run's cache and replays the same trajectory, so
    # every individual should hit.
    cache = EvaluationCache("bench")
    _timed_run(cache=cache)
    hits_before, misses_before = cache.hits, cache.misses
    rerun = _timed_run(cache=cache)
    rerun_hits = cache.hits - hits_before
    rerun_misses = cache.misses - misses_before
    results["cache"] = {
        "first_run_hits": hits_before,
        "first_run_misses": misses_before,
        "rerun_hits": rerun_hits,
        "rerun_misses": rerun_misses,
        "rerun_hit_rate": round(
            rerun_hits / max(1, rerun_hits + rerun_misses), 4),
        "rerun_individuals_per_second": rerun["individuals_per_second"],
    }
    assert results["cache"]["rerun_hit_rate"] == 1.0

    # One pytest-benchmark-timed serial run for the comparison tables.
    run_once(benchmark, lambda: _engine(SerialBackend()).run())

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {OUTPUT.name}: "
          f"serial {serial_rate} ind/s, "
          f"pool_2 {results['backends']['pool_2']['individuals_per_second']}"
          f" ind/s, pool_4 "
          f"{results['backends']['pool_4']['individuals_per_second']} ind/s "
          f"on {results['cpu_count']} core(s); "
          f"rerun hit rate {results['cache']['rerun_hit_rate']}")
