"""Pipeline/PDN hot-path throughput: full simulation vs steady-state
tiling.

Writes ``BENCH_pipeline.json`` at the repo root with simulated
cycles/second for the pipeline with detection off (full cycle-by-cycle
scheduling) and on (stop at the first recurring scheduler state, tile
the kernel), PDN samples/second with and without the periodic lock-in
hint, and the end-to-end ``SimulatedMachine.run`` speedup.  The
measured loop is the ``arm_power``-style periodic kernel every GA
evaluation runs, at the stock ``sim_cycles=1600`` and at a 16× horizon
where tiling's asymptotic advantage shows.

Acceptance gate: detection must deliver ≥ 3× pipeline throughput on the
periodic loop at ``sim_cycles=1600`` while producing bit-identical
traces (the equivalence contract is tested exhaustively in
``tests/test_cpu_steady_state.py``; this file only spot-checks it).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

import numpy as np
from conftest import run_once

from repro.cpu import SimulatedMachine
from repro.cpu.pdn import PDNModel
from repro.cpu.pipeline import PipelineSimulator
from repro.cpu.power import PowerModel

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

#: The arm_power-style kernel: wide mixed-port issue, one L1-resident
#: load, a striding base register and a predictable loop edge.
ARM_POWER_LOOP = """
1:
add x1, x7, x8
mul x2, x5, x6
vmul v0, v1, v2
ldr x3, [x4, #0]
add x9, x9, #8
b 1b
"""

REPEATS = 5


def _best_seconds(func) -> float:
    func()  # warm caches and JIT-less interpreter state
    best = float("inf")
    for _ in range(REPEATS):
        began = perf_counter()
        func()
        best = min(best, perf_counter() - began)
    return best


def _pipeline_rates(machine, program, sim_cycles):
    tiled_sim = PipelineSimulator(machine.arch, detect_steady_state=True)
    full_sim = PipelineSimulator(machine.arch, detect_steady_state=False)
    tiled_s = _best_seconds(lambda: tiled_sim.execute(program, sim_cycles))
    full_s = _best_seconds(lambda: full_sim.execute(program, sim_cycles))
    trace = tiled_sim.execute(program, sim_cycles)
    return {
        "sim_cycles": sim_cycles,
        "detected_prefix": trace.prefix_cycles,
        "detected_period": trace.period_cycles,
        "full_cycles_per_second": round(sim_cycles / full_s),
        "tiled_cycles_per_second": round(sim_cycles / tiled_s),
        "speedup": round(full_s / tiled_s, 2),
    }


def test_bench_pipeline(benchmark):
    machine = SimulatedMachine("cortex_a15", seed=0)
    program = machine.compile(ARM_POWER_LOOP)

    results = {
        "loop": "arm_power-style periodic kernel (cortex_a15)",
        "cpu_count": os.cpu_count(),
        "pipeline": {},
    }
    for sim_cycles in (1600, 25600):
        results["pipeline"][f"sim_cycles_{sim_cycles}"] = \
            _pipeline_rates(machine, program, sim_cycles)

    # PDN integration with and without the periodic lock-in hint, on
    # the real current waveform of the tiled trace.
    trace = machine.pipeline.execute(program, 1600)
    model = PowerModel(machine.arch)
    current = model.current_trace_a(program, trace)
    pdn = PDNModel(machine.arch.pdn, machine.arch.frequency_hz)
    plain_s = _best_seconds(
        lambda: pdn.simulate(current, machine.supply_v))
    hinted_s = _best_seconds(
        lambda: pdn.simulate(current, machine.supply_v,
                             period=trace.period_cycles,
                             prefix=trace.prefix_cycles))
    hinted = pdn.simulate(current, machine.supply_v,
                          period=trace.period_cycles,
                          prefix=trace.prefix_cycles)
    plain = pdn.simulate(current, machine.supply_v)
    assert np.array_equal(hinted.voltage, plain.voltage)
    results["pdn"] = {
        "samples": len(current),
        "full_samples_per_second": round(len(current) / plain_s),
        "hinted_samples_per_second": round(len(current) / hinted_s),
        "speedup": round(plain_s / hinted_s, 2),
    }

    # End-to-end machine.run — what one GA measurement actually costs.
    on = SimulatedMachine("cortex_a15", seed=0)
    off = SimulatedMachine("cortex_a15", seed=0,
                           steady_state_detection=False)
    prog_on = on.compile(ARM_POWER_LOOP)
    prog_off = off.compile(ARM_POWER_LOOP)
    on_s = _best_seconds(lambda: on.run(prog_on))
    off_s = _best_seconds(lambda: off.run(prog_off))
    a, b = on.run(prog_on), off.run(prog_off)
    assert a.core_power_w == b.core_power_w
    assert np.array_equal(a.voltage.voltage, b.voltage.voltage)
    results["machine_run"] = {
        "detection_on_runs_per_second": round(1.0 / on_s, 1),
        "detection_off_runs_per_second": round(1.0 / off_s, 1),
        "speedup": round(off_s / on_s, 2),
    }

    stock = results["pipeline"]["sim_cycles_1600"]
    assert stock["speedup"] >= 3.0, \
        f"steady-state tiling must be >= 3x at sim_cycles=1600: {stock}"
    assert results["pipeline"]["sim_cycles_25600"]["speedup"] >= \
        stock["speedup"], "tiling advantage must grow with the horizon"

    run_once(benchmark, lambda: PipelineSimulator(
        machine.arch).execute(program, 1600))

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {OUTPUT.name}: pipeline "
          f"{stock['speedup']}x at 1600 cycles, "
          f"{results['pipeline']['sim_cycles_25600']['speedup']}x at "
          f"25600; machine.run {results['machine_run']['speedup']}x")
