"""Ablation: register initialisation patterns.

Paper (Section III.B.2): "register values have considerable effect on
power consumption, so they must be initialized judiciously.  For this
work, we have use checkerboard patterns (e.g. 0xAAAAAAAA) since they
increase bit switching that helps in maximizing power or dI/dt
voltage-noise."  Deterministic: the same loop measured under both
templates.
"""

from repro.cpu import SimulatedMachine
from repro.isa import arm_template
from repro.core.template import Template
from repro.workloads import workload
from repro.workloads.builder import LoopBuilder

from conftest import run_once


def _measure(checkerboard: bool) -> float:
    machine = SimulatedMachine("cortex_a15", seed=1)
    body = (LoopBuilder("arm")
            .int_block(10).float_block(8).simd_block(8).load_block(4)
            .body())
    template = Template(arm_template(checkerboard=checkerboard))
    source = template.instantiate(body)
    return machine.run_source(source, cores=2).avg_power_w


def _ablation():
    return {"checkerboard": _measure(True), "zeros": _measure(False)}


def test_ablation_register_init(benchmark):
    power = run_once(benchmark, _ablation)

    ratio = power["checkerboard"] / power["zeros"]
    print(f"\npower with checkerboard init: {power['checkerboard']:.3f} W")
    print(f"power with all-zeros init:    {power['zeros']:.3f} W")
    print(f"ratio: {ratio:.3f}")

    # Checkerboard initialisation raises power substantially.
    assert ratio > 1.10
