"""Ablation: instruction order at fixed mix (paper Section VII).

"Previous work [8] reports that instruction-order can make up to 17%
difference in power for the same activity factor and instruction-mix"
— the paper's key argument for instruction-level over abstract-workload
GA frameworks (abstract models cannot control order).  This benchmark
measures the same multiset of instructions under many random orderings
on the simulated Cortex-A15.
"""

from repro.experiments.instruction_order import instruction_order_experiment

from conftest import run_once


def test_ablation_instruction_order(benchmark):
    result = run_once(benchmark, instruction_order_experiment,
                      orderings=30, seed=7)

    print("\n" + result.render())

    # Order alone moves power by a double-digit percentage — the
    # leverage only instruction-level optimisation can exploit.
    assert result.spread > 0.10
    # Sanity: all orderings measure positive, plausible power.
    assert all(0.1 < p < 5.0 for p in result.powers_w)
    assert len(result.powers_w) == 30
