"""Static analyzer overhead vs one simulated evaluation.

The ``static_rank`` search wrapper only pays off if pricing a candidate
statically is vastly cheaper than measuring it on the simulated
machine.  This benchmark prices every shipped winner (all
``configs/*/results/individuals/*.txt`` sources) through the cost
model's :func:`static_score` fast path and through the full
``analyze_cost`` pass, then times one complete simulated evaluation
(the ``measure_repeated`` call a GA generation issues per individual)
on the same platform.

Writes ``BENCH_staticrank.json`` at the repo root.

Acceptance gate: the per-program ``static_score`` must be at least
100× cheaper than a single simulated evaluation — the wrapper prices a
whole generation for less than one measurement it saves.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

from conftest import run_once

from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.cpu.microarch import microarch_for
from repro.isa import assembler_for
from repro.measurement import PowerMeasurement
from repro.staticcheck import analyze_cost, static_score

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_staticrank.json"

#: Shipped config directory -> (platform, static metric).
CONFIG_PLATFORMS = {
    "arm_ipc": ("cortex_a15", "ipc"),
    "arm_power": ("cortex_a15", "power"),
    "arm_temperature": ("cortex_a15", "temperature"),
    "x86_didt": ("athlon_x4", "didt"),
}

REPEATS = 5


def _best_seconds(func) -> float:
    func()  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        began = perf_counter()
        func()
        best = min(best, perf_counter() - began)
    return best


def _load_winners():
    """(platform, metric, source, program) for every shipped winner."""
    winners = []
    for config_dir, (platform, metric) in sorted(CONFIG_PLATFORMS.items()):
        arch = microarch_for(platform)
        assembler = assembler_for(arch.isa)
        for path in sorted(
                (REPO_ROOT / "configs" / config_dir /
                 "results" / "individuals").glob("*.txt")):
            source = path.read_text()
            program = assembler.assemble(source, name=path.name)
            winners.append((arch, metric, source, program))
    return winners


def test_bench_staticrank(benchmark):
    winners = _load_winners()
    assert len(winners) >= 40, "expected the shipped winner corpus"

    def score_all():
        for arch, metric, _, program in winners:
            static_score(program, arch, metric)

    def analyze_all():
        for arch, _, _, program in winners:
            analyze_cost(program, arch)

    score_s = _best_seconds(score_all) / len(winners)
    analyze_s = _best_seconds(analyze_all) / len(winners)

    # One full simulated evaluation, exactly as the GA pays for it:
    # measure_repeated on a connected simulated target.  Averaged over
    # a few winners so one unusually short kernel doesn't skew it.
    machine = SimulatedMachine("cortex_a15", seed=0)
    target = SimulatedTarget(machine)
    target.connect()
    measurement = PowerMeasurement(target, {"samples": "2"})
    eval_sources = [source for arch, _, source, _ in winners
                    if arch.isa == "arm"][:8]

    def evaluate_all():
        for source in eval_sources:
            measurement.measure_repeated(source, None)

    evaluation_s = _best_seconds(evaluate_all) / len(eval_sources)

    score_ratio = evaluation_s / score_s
    analyze_ratio = evaluation_s / analyze_s
    results = {
        "winners": len(winners),
        "static_score_us_per_program": round(score_s * 1e6, 2),
        "analyze_cost_us_per_program": round(analyze_s * 1e6, 2),
        "simulated_evaluation_us": round(evaluation_s * 1e6, 2),
        "score_speedup_vs_evaluation": round(score_ratio, 1),
        "analyze_speedup_vs_evaluation": round(analyze_ratio, 1),
    }

    assert score_ratio >= 100.0, \
        (f"static_score must be >= 100x cheaper than one simulated "
         f"evaluation: {results}")

    arch0, metric0, _, program0 = winners[0]
    run_once(benchmark, lambda: static_score(program0, arch0, metric0))

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {OUTPUT.name}: static_score "
          f"{results['score_speedup_vs_evaluation']}x and analyze_cost "
          f"{results['analyze_speedup_vs_evaluation']}x under one "
          f"simulated evaluation")
