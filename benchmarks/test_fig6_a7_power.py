"""Figure 6: Cortex-A7 power results.

Paper shape: the native GA virus causes the highest power; the
Cortex-A15 virus is not a good Cortex-A7 stress test (it lands at or
below the conventional workloads — "Different CPU designs require
different stress-tests").
"""

from repro.experiments import figure6

from conftest import run_once


def test_fig6_a7_power(benchmark, power_scale):
    result = run_once(benchmark, figure6, scale=power_scale)

    print("\n" + result.render())

    normalized = result.normalized
    native = result.native_virus_label        # GA_virus_cortex_a7
    cross = result.cross_virus_label          # GA_virus_cortex_a15

    assert normalized[native] == max(normalized.values())
    assert result.virus_margin_over_manual() > 1.08
    for name in ("coremark", "imdct", "fdct"):
        assert normalized[native] > normalized[name] * 1.15

    # The A15 virus transfers even worse in this direction: the paper's
    # Figure 6 shows it below every conventional workload.
    assert normalized[cross] < normalized["a7_manual_stress"]
    assert normalized[cross] < 1.05
