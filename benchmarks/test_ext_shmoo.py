"""Extension: frequency/voltage shmoo characterisation.

Generalises Figure 9's V_MIN methodology across clock frequencies, the
characterisation GeST-derived guardband studies run (paper ref. [25]).
Shapes asserted: V_MIN rises with clock for every workload; the dI/dt
virus stays the strictest stability test at every frequency point; at
a 15% overclock the virus's V_MIN crosses the nominal supply — the
overclocked part needs a voltage bump to survive its own worst case.
"""

from repro.analysis import frequency_shmoo, shmoo_table
from repro.experiments import didt_scale, evolve_virus, make_machine
from repro.workloads import workload

from conftest import run_once

FRACTIONS = (0.85, 1.0, 1.15)


def _shmoo():
    machine = make_machine("athlon_x4", seed=700)
    virus = evolve_virus("athlon_x4", "didt", seed=31,
                         scale=didt_scale(machine))
    sources = {
        "didtVirus": virus.source,
        "prime95": workload("prime95", "x86").source,
        "coremark": workload("coremark", "x86").source,
    }
    return machine, [frequency_shmoo(machine, src, name,
                                     frequency_fractions=FRACTIONS)
                     for name, src in sources.items()]


def test_ext_frequency_shmoo(benchmark):
    machine, results = run_once(benchmark, _shmoo)

    print("\n" + shmoo_table(results))

    by_name = {r.workload: r for r in results}
    frequencies = results[0].frequencies_hz

    # Higher clock never tolerates a lower supply.
    for r in results:
        assert r.is_monotonic_in_frequency()
        # And the slope is real: the overclocked point needs visibly
        # more voltage than the underclocked one.
        assert r.vmin_at(frequencies[-1]) > r.vmin_at(frequencies[0]) \
            + 0.05

    # The dI/dt virus is the strictest stability test at EVERY
    # frequency, not just the nominal point of Figure 9.
    for f in frequencies:
        assert by_name["didtVirus"].vmin_at(f) > \
            by_name["prime95"].vmin_at(f)
        assert by_name["prime95"].vmin_at(f) > \
            by_name["coremark"].vmin_at(f)

    # Overclocking verdict: at +15% clock the virus's V_MIN exceeds the
    # stock supply — the shmoo says this part cannot be overclocked at
    # nominal voltage.
    nominal_supply = machine.arch.vdd_nominal
    assert by_name["didtVirus"].vmin_at(frequencies[-1]) > nominal_supply
    # While at the stock clock everything fits under nominal.
    assert by_name["didtVirus"].vmin_at(
        machine.nominal_frequency_hz) <= nominal_supply
