"""Learned surrogate vs plain GA: simulated-evaluation reduction.

The ``surrogate`` wrapper only earns its keep if it reaches the plain
GA's best fitness while paying for far fewer full simulated
evaluations.  This benchmark runs the same search twice — once with the
stock genetic strategy, once wrapped in ``surrogate(genetic)`` with
shipped defaults — on the identical (platform, metric, seed), then
compares simulated-evaluation counts, wall-clock, best fitness and the
model's per-generation Spearman rank correlation.

Writes ``BENCH_surrogate.json`` at the repo root.

Acceptance gates (the ISSUE's floors):
  * the surrogate arm simulates at most 50% of the plain GA's
    evaluations;
  * its best fitness is no worse than the plain GA's;
  * the ridge model's mean Spearman over generations where it was
    fitted is at least 0.5.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

from conftest import run_once

from repro.experiments import GAScale
from repro.experiments.common import make_engine, make_machine
from repro.search import make_strategy

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_surrogate.json"

PLATFORM = "cortex_a15"
METRIC = "power"
SEED = 7
SCALE = GAScale(population_size=10, generations=8, individual_size=20,
                samples=2)


def _run(strategy):
    machine = make_machine(PLATFORM, seed=SEED)
    engine = make_engine(machine, METRIC, SEED, SCALE, strategy=strategy)
    began = perf_counter()
    history = engine.run()
    wall_s = perf_counter() - began
    best = history.best_individual
    return {
        "history": history,
        "wall_s": wall_s,
        "best_fitness": best.fitness if best is not None else 0.0,
        "simulated": sum(g.measured for g in history.generations),
    }


def test_bench_surrogate(benchmark):
    genetic = _run("genetic")
    surrogate = run_once(benchmark, lambda: _run(make_strategy(
        "surrogate", {"base": "genetic", "platform": PLATFORM})))

    rhos = [g.surrogate["spearman"]
            for g in surrogate["history"].generations
            if g.surrogate and g.surrogate.get("spearman") is not None]
    mean_rho = sum(rhos) / len(rhos) if rhos else 0.0
    reduction = surrogate["simulated"] / genetic["simulated"]

    results = {
        "platform": PLATFORM,
        "metric": METRIC,
        "seed": SEED,
        "scale": {"population_size": SCALE.population_size,
                  "generations": SCALE.generations,
                  "individual_size": SCALE.individual_size,
                  "samples": SCALE.samples},
        "genetic": {
            "simulated_evaluations": genetic["simulated"],
            "best_fitness": round(genetic["best_fitness"], 4),
            "wall_s": round(genetic["wall_s"], 3),
        },
        "surrogate": {
            "simulated_evaluations": surrogate["simulated"],
            "best_fitness": round(surrogate["best_fitness"], 4),
            "wall_s": round(surrogate["wall_s"], 3),
            "mean_spearman": round(mean_rho, 3),
        },
        "simulated_fraction": round(reduction, 3),
        "wall_clock_speedup": round(
            genetic["wall_s"] / surrogate["wall_s"], 2),
    }

    assert surrogate["simulated"] <= 0.5 * genetic["simulated"], \
        (f"surrogate must simulate at most half of the plain GA's "
         f"evaluations: {results}")
    assert surrogate["best_fitness"] >= genetic["best_fitness"] - 1e-9, \
        f"surrogate must not lose fitness vs the plain GA: {results}"
    assert mean_rho >= 0.5, \
        f"ridge model must rank usefully (mean rho >= 0.5): {results}"

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {OUTPUT.name}: surrogate(genetic) matched best "
          f"fitness {results['surrogate']['best_fitness']} with "
          f"{surrogate['simulated']}/{genetic['simulated']} simulated "
          f"evaluations ({results['simulated_fraction']}x), mean "
          f"Spearman {results['surrogate']['mean_spearman']}")
