"""Section IV/V convergence claim: the GA exceeds conventional
workloads within the run and keeps improving (paper: "produces
stress-tests that exceed significantly conventional workloads after
70-100 generations" at full scale; at this scaled-down effort the
crossover happens proportionally earlier)."""

from repro.analysis.convergence import (final_improvement,
                                        generations_to_exceed,
                                        is_monotonic)
from repro.experiments import evolve_virus, make_machine
from repro.workloads import workload

from conftest import run_once


def _converge(power_scale):
    virus = evolve_virus("cortex_a15", "power", seed=7, scale=power_scale)
    machine = make_machine("cortex_a15", seed=777)
    # Single-core score of the strongest conventional baseline, because
    # the GA's fitness is also measured single-core.
    baseline = max(
        machine.run_source(workload(name, "arm").source,
                           cores=1).avg_power_w
        for name in ("coremark", "imdct", "fdct", "a15_manual_stress"))
    return virus, baseline


def test_convergence(benchmark, power_scale):
    virus, baseline = run_once(benchmark, _converge, power_scale)

    series = virus.history.best_fitness_series()
    crossover = generations_to_exceed(virus.history, baseline)

    print(f"\nbest-fitness series (single-core W): "
          f"{[round(v, 3) for v in series]}")
    print(f"strongest baseline (single-core W): {baseline:.3f}; "
          f"first exceeded at generation {crossover}")

    # The search eventually beats the best conventional workload...
    assert crossover is not None
    # ...and not on the very first random population.
    assert series[-1] > baseline
    # Elitism + low measurement noise: near-monotone improvement.
    assert is_monotonic(series, tolerance=0.02 * series[-1])
    # The run actually learned something substantial.
    assert final_improvement(virus.history) > 0.05
