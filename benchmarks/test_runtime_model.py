"""Section IV's runtime claim: 50 individuals x ~100 generations at
~5 s per measurement ≈ 7 hours of GA wall time."""

from repro.experiments import estimate_runtime

from conftest import run_once


def test_runtime_model(benchmark):
    estimate = run_once(benchmark, estimate_runtime)

    print(f"\nGA runtime model (paper Section IV): "
          f"{estimate.population_size} individuals x "
          f"{estimate.generations} generations x "
          f"{estimate.measurement_s:.0f}s "
          f"-> {estimate.total_hours:.1f} hours")

    assert estimate.measurements == 5000
    assert 6.5 < estimate.total_hours < 8.0

    # Sensitivity: the three factors the paper names are exactly the
    # model's degrees of freedom.
    assert estimate_runtime(population_size=25).total_s == \
        estimate.total_s / 2
    assert estimate_runtime(generations=50).total_s == \
        estimate.total_s / 2
    half_measure = estimate_runtime(measurement_s=2.5)
    assert half_measure.total_s < estimate.total_s
