"""Table III: instruction breakdown of the Cortex-A15 and Cortex-A7
power viruses.

Paper shape: both viruses are 50-instruction loops with a prominent
float/SIMD component; the Cortex-A7 virus needs many more branch
instructions than the Cortex-A15 virus (10 vs 1 in the paper), and the
two mixes differ — different microarchitectures demand different
stress-tests.
"""

from repro.experiments import table3

from conftest import run_once


def test_table3_instruction_breakdown(benchmark, power_scale):
    result = run_once(benchmark, table3, scale=power_scale)

    print("\n" + result.render())

    a15, a7 = result.a15_mix, result.a7_mix

    # Both loops are the configured 50 instructions.
    for mix in (a15, a7):
        assert sum(mix.get(c, 0) for c in
                   ("ShortInt", "LongInt", "Float/SIMD", "Mem",
                    "Branch", "Nop")) == 50

    # Float/SIMD prominent in both (paper: "floating point/SIMD
    # instructions are dominant").
    assert a15["Float/SIMD"] >= 15
    assert a7["Float/SIMD"] >= 8

    # The A7 virus leans on branches much harder than the A15 virus
    # (paper: 10 vs 1).
    assert a7["Branch"] > a15["Branch"]
    assert a7["Branch"] >= 4
    assert a15["Branch"] <= 4

    # The mixes genuinely differ between microarchitectures.
    assert a15 != a7
