"""Ablation: one-point vs uniform crossover.

Paper (Section III.A): "to accelerate the GA convergence we prefer
one-point crossover that does a better job in preserving the
instruction-order of strong individuals compared to uniform-crossover".
We compare area under the best-fitness curve (higher = climbed earlier)
for the two operators over multiple seeds of a power search.
"""

from dataclasses import replace

from repro.analysis.convergence import area_under_curve
from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement

from conftest import run_once

SEEDS = (3, 4, 5)


def _search(crossover, seed, scale):
    machine = SimulatedMachine("cortex_a15", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=scale.effective_mutation_rate(),
                      crossover_operator=crossover,
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    engine = GeneticEngine(config,
                           PowerMeasurement(target, {"samples": "4"}),
                           DefaultFitness())
    return engine.run().best_fitness_series()


def _ablation(scale):
    scores = {}
    for crossover in ("one_point", "uniform"):
        scores[crossover] = [
            area_under_curve(_search(crossover, seed, scale))
            for seed in SEEDS]
    return scores


def test_ablation_crossover(benchmark, ablation_scale):
    scores = run_once(benchmark, _ablation, ablation_scale)

    mean = {k: sum(v) / len(v) for k, v in scores.items()}
    print(f"\nconvergence AUC (mean over seeds {SEEDS}): "
          f"one_point={mean['one_point']:.2f} "
          f"uniform={mean['uniform']:.2f}")

    # Both operators search successfully...
    assert all(auc > 0 for aucs in scores.values() for auc in aucs)
    # ...and one-point is at least as good on average (the paper's
    # preference; a small tolerance keeps seed noise from flaking).
    assert mean["one_point"] >= mean["uniform"] * 0.98
