"""Ablation: mutation rate.

Paper (Section III.A): "mutation rate should be low enough so that only
one or at-most two loop instructions are mutated at a time.  Higher
mutation rate might impede the GA convergence."  We compare the paper's
~1-mutation rate against an aggressive rate on the same search.
"""

from dataclasses import replace

from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement

from conftest import run_once

SEEDS = (3, 4, 5)


def _search(rate, seed, scale):
    machine = SimulatedMachine("cortex_a15", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=rate,
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    engine = GeneticEngine(config,
                           PowerMeasurement(target, {"samples": "4"}),
                           DefaultFitness())
    return engine.run().best_fitness_series()[-1]


def _ablation(scale):
    # The convergence penalty of a high rate shows once the search has
    # had time to refine, so this ablation runs longer than the others.
    scale = replace(scale, generations=35)
    low_rate = scale.effective_mutation_rate()      # ~1 mutation/indiv
    high_rate = 0.50                                # ~25 mutations/indiv
    return {
        "low": [_search(low_rate, s, scale) for s in SEEDS],
        "high": [_search(high_rate, s, scale) for s in SEEDS],
    }


def test_ablation_mutation_rate(benchmark, ablation_scale):
    finals = run_once(benchmark, _ablation, ablation_scale)

    mean_low = sum(finals["low"]) / len(finals["low"])
    mean_high = sum(finals["high"]) / len(finals["high"])
    print(f"\nfinal best power (W, single core): "
          f"~1 mutation/indiv={mean_low:.3f}  "
          f"~25 mutations/indiv={mean_high:.3f}")

    # The paper's recommended rate converges higher.
    assert mean_low > mean_high
