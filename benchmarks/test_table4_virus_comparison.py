"""Table IV: power virus vs simple power virus vs IPC virus.

Paper shape: the IPC virus has (at least as) high IPC but lower power
and temperature than the power virus; the Equation-1 simple virus
reaches (near) the power virus's temperature while using markedly fewer
unique instructions (13 vs 21 in the paper); the power virus uses more
long-latency and memory instructions than the IPC virus.

Documented deviation (see EXPERIMENTS.md): on the simulated X-Gene2
the IPC gap between the two viruses is small (~1% vs the paper's 12%)
because the model's perfect renaming lets cheap fillers keep issue
slots full; the power and temperature gaps fully reproduce.
"""

from repro.analysis.instruction_mix import mix_of_individual
from repro.experiments import table4

from conftest import run_once


def test_table4_virus_comparison(benchmark):
    result = run_once(benchmark, table4)

    print("\n" + result.render())

    rel_ipc = result.relative_ipc
    rel_power = result.relative_power
    rel_temp = result.relative_temperature
    uniques = result.unique_instructions

    # IPC virus: highest IPC, clearly lower power and temperature.
    assert rel_ipc["IPCvirus"] >= rel_ipc["powerVirus"] * 0.995
    assert rel_power["IPCvirus"] < 0.97
    assert rel_temp["IPCvirus"] < 1.0

    # "the highest IPC does not automatically convert to highest power
    # consumption and temperature"
    assert rel_power["powerVirus"] > rel_power["IPCvirus"]
    assert rel_temp["powerVirus"] > rel_temp["IPCvirus"]

    # Simple virus: far fewer unique opcodes at near-power-virus heat.
    assert uniques["powerVirusSimple"] < uniques["powerVirus"]
    assert uniques["powerVirusSimple"] <= 16
    assert rel_temp["powerVirusSimple"] > 0.95
    assert rel_power["powerVirusSimple"] > 0.90

    # Mix shape: the power virus engages memory heavily and keeps some
    # long-latency instructions; the IPC virus carries fewer
    # long-latency ops.
    power_mix = mix_of_individual(result.power_virus.individual)
    ipc_mix = mix_of_individual(result.ipc_virus.individual)
    assert power_mix["Mem"] >= 8
    assert power_mix["LongInt"] >= 1
    assert power_mix["LongInt"] >= ipc_mix["LongInt"] - 2
