"""Ablation: operand vs whole-instruction mutation (paper Figure 3).

The paper's mutation operator has two variants — transform a whole
instruction, or transform a single operand (the SUB's r2→r5 example).
This ablation runs the power search with only-whole-instruction
mutations (share 0), the balanced default (0.5) and only-operand
mutations (share 1.0).  Operand-only mutation cannot introduce new
opcodes, so once the initial population's opcode diversity is consumed
the search stalls — both kinds are needed.
"""

from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement

from conftest import run_once

SEEDS = (3, 4, 5)
SHARES = (0.0, 0.5, 1.0)


def _final(share, seed, scale):
    machine = SimulatedMachine("cortex_a15", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=scale.effective_mutation_rate(),
                      operand_mutation_share=share,
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    engine = GeneticEngine(config,
                           PowerMeasurement(target, {"samples": "4"}),
                           DefaultFitness())
    return engine.run().best_fitness_series()[-1]


def _ablation(scale):
    return {share: [_final(share, seed, scale) for seed in SEEDS]
            for share in SHARES}


def test_ablation_operand_mutation_share(benchmark, ablation_scale):
    finals = run_once(benchmark, _ablation, ablation_scale)

    mean = {share: sum(v) / len(v) for share, v in finals.items()}
    print("\nmean final best power by operand-mutation share:")
    for share in SHARES:
        print(f"  share {share:.1f}: {mean[share]:.3f} W")

    # Every variant still searches (elitism + crossover do real work).
    assert all(m > 1.0 for m in mean.values())
    # The mixed default is at least as good as operand-only mutation,
    # which cannot inject new opcodes.
    assert mean[0.5] >= mean[1.0] * 0.99
