"""Figure 9: V_MIN results on the AMD Athlon.

Paper shape: the dI/dt virus causes instability at a higher voltage
than every other workload — it is the strictest stability test, above
both the commonly used AMD stability test and Prime95.
"""

from repro.analysis.vmin import VMIN_STEP_V
from repro.experiments import figure9

from conftest import run_once


def test_fig9_vmin(benchmark):
    result = run_once(benchmark, figure9)

    print("\n" + result.render())

    vmin = result.vmin_v
    virus = result.virus.name

    # The dI/dt virus is the strictest stability test.
    assert result.virus_is_strictest()
    assert vmin[virus] > vmin["prime95"] + 2 * VMIN_STEP_V
    assert vmin[virus] > vmin["amd_stability_test"] + 2 * VMIN_STEP_V

    # Every characterised workload still has a positive guardband at
    # nominal supply (nothing crashes out of the box).
    for r in result.results.values():
        assert r.guardband_v >= 0
        assert r.vmin_v <= r.nominal_v

    # The sweep respects the paper's 12.5 mV step: every recorded
    # setting is nominal minus an integer number of steps.
    for r in result.results.values():
        for supply, _ in r.sweep:
            steps = (r.nominal_v - supply) / VMIN_STEP_V
            assert abs(steps - round(steps)) < 1e-6
