"""Ablation: tournament size (Table I default: 5).

Tournament size 1 removes selection pressure entirely (uniform random
parents); the default of 5 must search distinctly better.
"""

from repro.core.config import GAParameters, RunConfig
from repro.core.engine import GeneticEngine
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.fitness import DefaultFitness
from repro.isa import arm_library, arm_template
from repro.measurement import PowerMeasurement

from conftest import run_once

SEEDS = (3, 4, 5)


def _final(tournament_size, seed, scale):
    machine = SimulatedMachine("cortex_a15", seed=seed)
    target = SimulatedTarget(machine)
    target.connect()
    ga = GAParameters(population_size=scale.population_size,
                      individual_size=scale.individual_size,
                      mutation_rate=scale.effective_mutation_rate(),
                      tournament_size=tournament_size,
                      generations=scale.generations, seed=seed)
    config = RunConfig(ga=ga, library=arm_library(),
                       template_text=arm_template())
    engine = GeneticEngine(config,
                           PowerMeasurement(target, {"samples": "4"}),
                           DefaultFitness())
    return engine.run().best_fitness_series()[-1]


def _ablation(scale):
    return {size: [_final(size, s, scale) for s in SEEDS]
            for size in (1, 5)}


def test_ablation_tournament_size(benchmark, ablation_scale):
    finals = run_once(benchmark, _ablation, ablation_scale)

    mean = {k: sum(v) / len(v) for k, v in finals.items()}
    print(f"\nmean final best power: tournament=1 {mean[1]:.3f} W, "
          f"tournament=5 {mean[5]:.3f} W")

    # Selection pressure matters.
    assert mean[5] > mean[1]
