"""Robustness: the headline result must not be a lucky seed.

Every figure in this harness runs one fixed-seed GA per platform; this
benchmark repeats the Cortex-A15 power search (the Figure 5 claim)
with three unrelated seeds and requires the GA virus to beat the
hand-written stress test on every one of them.
"""

from repro.experiments import GAScale, evolve_virus, make_machine
from repro.workloads import workload

from conftest import run_once

SEEDS = (101, 202, 303)
SCALE = GAScale(population_size=20, generations=30)


def _sweep():
    machine = make_machine("cortex_a15", seed=999)
    manual = machine.run_source(
        workload("a15_manual_stress", "arm").source,
        cores=machine.arch.core_count).avg_power_w
    viruses = {}
    for seed in SEEDS:
        virus = evolve_virus("cortex_a15", "power", seed, scale=SCALE,
                             use_cache=False)
        run = machine.run_source(virus.source,
                                 cores=machine.arch.core_count)
        viruses[seed] = run.avg_power_w
    return manual, viruses


def test_robustness_across_seeds(benchmark):
    manual, viruses = run_once(benchmark, _sweep)

    print(f"\nmanual stress test: {manual:.3f} W (2 cores)")
    for seed, power in viruses.items():
        print(f"  seed {seed}: GA virus {power:.3f} W "
              f"(x{power / manual:.3f})")

    # Every seed's virus beats the manual stress test...
    for seed, power in viruses.items():
        assert power > manual, f"seed {seed} lost to the manual test"
    # ...and the seeds agree with each other within a few percent
    # (the search converges to the same optimum region).
    values = list(viruses.values())
    assert max(values) / min(values) < 1.08
