"""Ablation: dI/dt loop length vs the resonance rule of thumb.

Paper (Section III.A): "A rule of thumb that is found to work well for
dI/dt noise is to have the loop instruction length equal to
IPC x clock_frequency / resonance_frequency".  We evolve dI/dt viruses
at the rule-of-thumb length, at half of it and at a quarter of it; the
rule-of-thumb search must find the most voltage noise.
"""

from repro.experiments import GAScale, didt_loop_length, evolve_virus, \
    make_machine

from conftest import run_once


def _ablation(scale_pop, scale_gens):
    machine = make_machine("athlon_x4")
    resonant = didt_loop_length(machine)
    results = {}
    for label, size in (("rule_of_thumb", resonant),
                        ("half", max(4, resonant // 2)),
                        ("quarter", max(3, resonant // 4))):
        scale = GAScale(population_size=scale_pop,
                        generations=scale_gens,
                        individual_size=size,
                        mutation_rate=max(0.02, round(1.0 / size, 4)))
        virus = evolve_virus("athlon_x4", "didt", seed=31, scale=scale,
                             use_cache=False)
        results[label] = (size, virus.fitness)
    return resonant, results


def test_ablation_didt_loop_length(benchmark, ablation_scale):
    resonant, results = run_once(
        benchmark, _ablation,
        ablation_scale.population_size, ablation_scale.generations)

    print(f"\nresonance rule-of-thumb length: {resonant}")
    for label, (size, fitness) in results.items():
        print(f"  {label:14s} loop={size:3d}  "
              f"pk-pk={fitness * 1000:7.2f} mV")

    # The rule-of-thumb length is in the paper's typical 15-50 range.
    assert 15 <= resonant <= 50
    # Matching the resonance period beats much shorter loops.
    assert results["rule_of_thumb"][1] > results["half"][1]
    assert results["rule_of_thumb"][1] > results["quarter"][1] * 1.5
