"""Figure 7: X-Gene2 chip temperature.

Paper shape: the (temperature-optimised) power virus reaches the
highest chip temperature; the IPC virus is second, above every Parsec
and NAS workload; bodytrack is the normalisation reference.
"""

from repro.experiments import figure7

from conftest import run_once


def test_fig7_xgene2_temperature(benchmark):
    result = run_once(benchmark, figure7)

    print("\n" + result.render())

    normalized = result.normalized
    baselines = [name for name in normalized
                 if name not in ("powerVirus", "IPCvirus")]

    # powerVirus hottest, IPCvirus second (paper: "The power virus
    # outperforms all other workloads ... The IPC virus also raises the
    # chip temperature very high (but lower than power virus)").
    assert normalized["powerVirus"] == max(normalized.values())
    assert normalized["IPCvirus"] > max(normalized[b] for b in baselines)
    assert normalized["powerVirus"] > normalized["IPCvirus"]

    # The paper's Figure 7 margin over bodytrack is ~9%; require a
    # solid margin here too.
    assert normalized["powerVirus"] > 1.05
    assert abs(normalized["bodytrack"] - 1.0) < 1e-9

    # Physical sanity: everything sits between ambient-ish idle and the
    # machine's specification maximum.
    for temp in result.temperature_c.values():
        assert result.ambient_c < temp < 150.0
