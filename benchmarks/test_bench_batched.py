"""Population-batched evaluation: batched/pool vs serial, full path.

Writes ``BENCH_batched.json`` at the repo root with per-individual
wall-clock for the serial loop, :class:`BatchedBackend`, and a
4-worker :class:`ProcessPoolBackend` dispatching batched sub-batches,
across three regimes of one 64-individual generation:

* steady-state detection on, single measurement (the cheapest serial
  case — batched wins only on assembly splicing and array execution);
* detection off (full cycle-by-cycle simulation), single measurement;
* detection off with ``repeats=3`` noise-averaged measurements — the
  paper's repeated-measurement methodology, and the regime the batched
  path is built for: the serial loop re-runs the whole deterministic
  simulation per repeat, while the batched path executes once and
  replays only the noise draws.

Every non-serial backend must reproduce the serial results bit for bit
in every round — the speedup is only meaningful if the trajectory is
identical.  Timing is best-of-3 with a fresh job set per round (the
engine's steady state: persistent backend, new generation each time).
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path
from time import perf_counter

from conftest import run_once

from repro.core.config import parse_config_file
from repro.core.individual import random_individual
from repro.core.template import Template
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.evaluation import ProcessPoolBackend, SerialBackend
from repro.evaluation.backends import AutoSelectBackend, BatchedBackend
from repro.evaluation.pipeline import EvaluationPipeline
from repro.fitness.default_fitness import DefaultFitness
from repro.measurement.power import PowerMeasurement

REPO_ROOT = Path(__file__).resolve().parent.parent
CONFIG = REPO_ROOT / "configs" / "arm_power" / "config.xml"
OUTPUT = REPO_ROOT / "BENCH_batched.json"

#: CI's bench-smoke leg runs at a reduced scale via the environment;
#: the committed BENCH_batched.json is produced at the default 64.
#: The vectorization win amortizes per-generation fixed costs over the
#: population, so the speedup floors relax below 64 individuals.
POPULATION = int(os.environ.get("GEST_BENCH_POPULATION", "64"))
BATCHED_FLOOR = 5.0 if POPULATION >= 64 else 3.0
POOL_FLOOR = 2.0 if POPULATION >= 64 else 1.5
ROUND_SEEDS = (101, 202, 303)


def _build_pipeline(detection: bool, repeats: int):
    config = parse_config_file(CONFIG)
    machine = SimulatedMachine("cortex_a15", seed=config.ga.seed or 0,
                               sim_cycles=600,
                               steady_state_detection=detection)
    target = SimulatedTarget(machine)
    target.connect()
    params = {"duration": "2", "samples": "5"}
    if repeats > 1:
        params["repeats"] = str(repeats)
    measurement = PowerMeasurement(target, params)
    pipeline = EvaluationPipeline(
        template=Template(config.template_text), measurement=measurement,
        fitness=DefaultFitness(), noise_seed=config.ga.seed or 0)
    return config, pipeline


def _make_jobs(config, pipeline, round_seed: int):
    rng = random.Random(round_seed)
    jobs = []
    for uid in range(POPULATION):
        individual = random_individual(config.library,
                                       config.ga.individual_size, rng,
                                       uid=uid)
        jobs.append((individual, pipeline.render(individual)))
    return jobs


def _evaluate(backend, pipeline, jobs):
    runner = getattr(backend, "evaluate_generation", None)
    if callable(runner):
        return runner(pipeline, jobs)
    return backend.evaluate(pipeline, jobs)


def _observables(results):
    return [(r.uid, r.measurements, r.fitness) for r in results]


def _run_regime(detection: bool, repeats: int, include_pool: bool):
    backends = {"serial": SerialBackend(), "batched": BatchedBackend()}
    if include_pool:
        backends["pool_4"] = ProcessPoolBackend(4)
    state = {name: _build_pipeline(detection, repeats)
             for name in backends}
    seconds = {name: [] for name in backends}
    for round_seed in ROUND_SEEDS:
        round_results = {}
        for name, backend in backends.items():
            config, pipeline = state[name]
            jobs = _make_jobs(config, pipeline, round_seed)
            began = perf_counter()
            results = _evaluate(backend, pipeline, jobs)
            seconds[name].append(perf_counter() - began)
            round_results[name] = _observables(results)
        for name, observed in round_results.items():
            assert observed == round_results["serial"], (
                f"{name} diverged from serial observables "
                f"(detection={detection}, repeats={repeats}, "
                f"round seed {round_seed})")
    for backend in backends.values():
        backend.close()
    regime = {
        "steady_state_detection": detection,
        "repeats": repeats,
        "bitwise_identical_to_serial": True,
    }
    for name in backends:
        best = min(seconds[name])
        regime[name] = {
            "seconds_best_of_3": round(best, 4),
            "per_individual_ms": round(best / POPULATION * 1000, 4),
        }
    serial_best = regime["serial"]["seconds_best_of_3"]
    for name in backends:
        if name != "serial":
            regime[name]["speedup_vs_serial"] = round(
                serial_best / regime[name]["seconds_best_of_3"], 3)
    return regime


def test_bench_batched(benchmark):
    results = {
        "config": str(CONFIG.relative_to(REPO_ROOT)),
        "population_size": POPULATION,
        "cpu_count": os.cpu_count(),
        "rounds": len(ROUND_SEEDS),
        "regimes": {},
    }

    results["regimes"]["detect_on_repeats_1"] = _run_regime(
        detection=True, repeats=1, include_pool=False)
    results["regimes"]["full_sim_repeats_1"] = _run_regime(
        detection=False, repeats=1, include_pool=False)
    # Headline regime: full simulation, three noise-averaged repeats.
    headline = _run_regime(detection=False, repeats=3, include_pool=True)
    results["regimes"]["full_sim_repeats_3"] = headline

    # What the auto-selector does at this scale, for the record.
    config, pipeline = _build_pipeline(detection=False, repeats=3)
    auto = AutoSelectBackend(pool_workers=os.cpu_count() or 1)
    auto.evaluate_generation(pipeline,
                             _make_jobs(config, pipeline, ROUND_SEEDS[0]))
    results["auto_select"] = {"choice": auto.last_choice,
                              "reason": auto.last_reason}
    auto.close()

    batched_speedup = headline["batched"]["speedup_vs_serial"]
    pool_speedup = headline["pool_4"]["speedup_vs_serial"]
    assert batched_speedup >= BATCHED_FLOOR, (
        f"batched must beat serial by {BATCHED_FLOOR}x in the "
        f"repeated-measurement regime, got {batched_speedup}x: {headline}")
    assert pool_speedup >= POOL_FLOOR, (
        f"pool_4 (batched sub-batches) must beat serial by {POOL_FLOOR}x "
        f"in the repeated-measurement regime, got {pool_speedup}x: "
        f"{headline}")

    # One pytest-benchmark-timed batched pass for the comparison tables.
    config, pipeline = _build_pipeline(detection=False, repeats=3)
    jobs = _make_jobs(config, pipeline, ROUND_SEEDS[0])
    run_once(benchmark, lambda: BatchedBackend().evaluate_generation(
        pipeline, jobs))

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {OUTPUT.name}: headline full_sim_repeats_3 "
          f"batched {batched_speedup}x, pool_4 {pool_speedup}x vs serial "
          f"on {POPULATION} individuals, {results['cpu_count']} core(s); "
          f"auto chose {results['auto_select']['choice']}")
