"""Table I: the GA parameter defaults.

Regenerates the parameter table and checks the framework's defaults
match the paper's published values.
"""

from repro.core.config import GAParameters
from repro.experiments import GAScale

from conftest import run_once


def _table1():
    ga = GAParameters()
    rows = [
        ("population_size", ga.population_size),
        ("individual_size (loop instructions)", ga.individual_size),
        ("mutation_rate", ga.mutation_rate),
        ("crossover_operator", ga.crossover_operator),
        ("elitism", ga.elitism),
        ("parent_selection_method", ga.parent_selection_method),
        ("tournament_size", ga.tournament_size),
    ]
    return ga, rows


def test_table1_ga_parameters(benchmark):
    ga, rows = run_once(benchmark, _table1)

    print("\nGA parameters (paper Table I)")
    for name, value in rows:
        print(f"  {name:40s} {value}")

    # Paper values: population 50, loop 15-50 instructions, mutation
    # 0.02-0.08, one-point crossover, elitism, tournament of 5.
    assert ga.population_size == 50
    assert 15 <= ga.individual_size <= 50
    assert 0.02 <= ga.mutation_rate <= 0.08
    assert ga.crossover_operator == "one_point"
    assert ga.elitism is True
    assert ga.parent_selection_method == "tournament"
    assert ga.tournament_size == 5

    # The mutation-rate rule of thumb: about one mutated instruction
    # per individual at every loop size the paper uses.
    for size in (15, 50):
        scale = GAScale(individual_size=size)
        expected = size * scale.effective_mutation_rate()
        assert 0.9 <= expected <= 2.1
