"""Extension: shared-memory multi-core viruses (paper Section IV).

The paper discusses MAMPO's finding — on simulated multi-cores, power
viruses that access shared memory draw significantly more total power
because the network-on-chip is heavily engaged (in some runs more than
a third of total power) — and sketches how to add it to GeST with a
shared-memory template.  This benchmark runs that sketch: the same GA
power search with a core-private template and with the shared-segment
template, scored with eight instances on the simulated server.
"""

from repro.experiments import GAScale, shared_memory_experiment

from conftest import run_once


def test_ext_shared_memory(benchmark):
    result = run_once(benchmark, shared_memory_experiment,
                      scale=GAScale(population_size=20, generations=25))

    print("\n" + result.render())

    power = result.chip_power_w()
    noc = result.noc_power_w()

    # The shared-memory virus draws more total power...
    assert power["sharedVirus"] > power["privateVirus"] * 1.05
    # ...specifically through the interconnect.
    assert noc["privateVirus"] == 0.0
    assert noc["sharedVirus"] > 1.0
    # The NoC contribution is material (MAMPO saw up to ~33%; the scale
    # here is smaller but must be far from rounding error).
    assert noc["sharedVirus"] / power["sharedVirus"] > 0.08
    # The GA actively routed traffic through the shared segment.
    assert result.shared_fraction > 0.25
