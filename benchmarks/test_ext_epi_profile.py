"""Extension: energy-per-instruction profiling (paper Section II).

The paper lists EPI-profile construction among the uses of targeted
stress-tests (citing Bertran et al. [8]).  This benchmark derives an
EPI profile from homogeneous micro-benchmarks —
``EPI = (P − P_baseline) / issue_rate`` — and validates the
methodology closed-loop against the simulated platform's configured
EPI table.

Known artefact faithfully reproduced: serialised unpipelined ops
(integer divide at IPC ≈ 0.1) are *under*-estimated by the
divide-by-rate method because the baseline subtraction assumes a busy
pipeline — the same pitfall the micro-benchmark literature documents.
"""

from repro.experiments import characterize_epi

from conftest import run_once

#: Opcodes whose units stay pipelined in the homogeneous kernels —
#: the divide-by-rate method is accurate for these.
PIPELINED = ("add", "mul", "fadd", "fmul", "vadd", "vmul", "ldr", "str")


def test_ext_epi_profile(benchmark):
    profile = run_once(benchmark, characterize_epi, "cortex_a15")

    print("\n" + profile.render())
    print(f"rank agreement vs configured table: "
          f"{profile.rank_agreement():.3f}")

    # The derived ordering matches the platform's true EPI ordering.
    assert profile.rank_agreement() > 0.8

    # For pipelined opcodes the estimate lands within a consistent
    # band of the configured value (below it — the toggle factor and
    # baseline subtraction shave a fixed share).
    for opcode in PIPELINED:
        entry = profile.entries[opcode]
        assert 0.5 * entry.configured_epi_pj < entry.measured_epi_pj \
            < 1.2 * entry.configured_epi_pj, opcode

    # The SIMD multiply tops the profile; NOP bottoms it — the shape a
    # power-model builder needs.
    ranked = [e.opcode for e in profile.ranked()]
    assert ranked[0] == "vmul"
    assert ranked[-1] == "nop"

    # The documented divide-by-rate artefact: the serialised divider is
    # underestimated, not overestimated.
    sdiv = profile.entries["sdiv"]
    assert sdiv.measured_epi_pj < sdiv.configured_epi_pj
    assert sdiv.ipc < 0.3
