"""Extension: instruction-level vs abstract-workload GA
(paper Section VII / Table V).

The paper argues GeST's instruction-level optimisation beats the
abstract-workload-model family (MAMPO, SYMPO, Joshi et al.) because
opcodes, operand values and instruction order are "out of GA control"
in the abstract model — while conceding the abstract model's smaller
design space is an advantage (it converges faster).  Both effects are
measured here: the two styles run with identical platform, measurement,
fitness and evaluation budget.
"""

from repro.experiments import GAScale, abstract_comparison

from conftest import run_once


def test_ext_abstract_vs_instruction_level(benchmark):
    result = run_once(benchmark, abstract_comparison,
                      scale=GAScale(population_size=24, generations=40))

    print("\n" + result.render())

    # The paper's bottom line: instruction-level finds the stronger
    # virus at a full search budget.
    assert result.advantage > 1.0

    # Both searches find genuinely hot loops (well above coremark-class
    # power, ~0.55 W single-core on this platform).
    assert result.instruction_level_power_w > 1.2
    assert result.abstract_power_w > 1.2

    # The abstract model's conceded advantage: its reduced design space
    # climbs quickly — its first-generation best is already a large
    # fraction of its final value.
    series = result.abstract_series
    assert series[0] > 0.8 * series[-1]

    # The winning abstract profile leans on the energetic categories
    # (float/SIMD + memory dominate its mix), mirroring what the
    # instruction-level virus discovers opcode by opcode.
    mix = result.abstract_best.profile.normalized_mix()
    heavy = mix["float"] + mix["simd"] + mix["mem_load"] \
        + mix["mem_store"]
    assert heavy > 0.5
