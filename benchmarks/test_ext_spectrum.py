"""Extension: spectral verification of the dI/dt mechanism
(paper Sections II and VI).

The paper's causal story is that dI/dt viruses create "periodic current
surges that match the CPU's PDN 1st order resonance-frequency".  The
substrate makes that story *checkable*: FFT the evolved virus's
per-cycle current draw and verify its AC energy concentrates at the
PDN resonance, while the sustained power hog (Prime95) is spectrally
flat.
"""

from repro.analysis import current_spectrum, resonance_band_ratio
from repro.experiments import didt_scale, evolve_virus, make_machine
from repro.workloads import workload

from conftest import run_once


def _spectra():
    machine = make_machine("athlon_x4", seed=909)
    scale = didt_scale(machine)
    virus = evolve_virus("athlon_x4", "didt", seed=31, scale=scale)

    def analyse(source, name):
        program = machine.compile(source, name=name)
        trace = machine.pipeline.execute(program,
                                         max_cycles=machine.sim_cycles)
        current = machine.power.current_trace_a(program, trace)
        spectrum = current_spectrum(current, machine.arch.frequency_hz)
        band, fraction = resonance_band_ratio(
            spectrum, machine.pdn.resonance_hz)
        return spectrum, band, fraction

    return {
        "resonance_hz": machine.pdn.resonance_hz,
        "didtVirus": analyse(virus.source, "didtVirus"),
        "prime95": analyse(workload("prime95", "x86").source, "prime95"),
        "coremark": analyse(workload("coremark", "x86").source,
                            "coremark"),
    }


def test_ext_current_spectrum(benchmark):
    results = run_once(benchmark, _spectra)

    resonance = results["resonance_hz"]
    print(f"\nPDN resonance: {resonance / 1e6:.1f} MHz")
    for name in ("didtVirus", "prime95", "coremark"):
        spectrum, band, fraction = results[name]
        print(f"  {name:10s} dominant "
              f"{spectrum.dominant_frequency_hz() / 1e6:7.1f} MHz, "
              f"resonant-band amplitude {band:6.3f} A "
              f"({fraction * 100:4.1f}% of AC energy)")

    virus_spectrum, virus_band, virus_fraction = results["didtVirus"]
    _, prime_band, _ = results["prime95"]

    # The virus's dominant current component sits at the resonance...
    assert abs(virus_spectrum.dominant_frequency_hz() - resonance) \
        < 0.25 * resonance
    # ...concentrating a large share of its AC energy there (the exact
    # share depends on the seed's harmonic content; a third of all AC
    # energy within ±12.5% of f_res is already sharply resonant)...
    assert virus_fraction > 0.3
    # ...with an order of magnitude more resonant-band current than the
    # sustained power hog.
    assert virus_band > prime_band * 10
