"""Figure 8: voltage-noise (max−min) results on the AMD Athlon.

Paper shape: the GA dI/dt virus clearly outperforms every other
workload including Prime95 and AMD's own stability test; high-power
workloads (Prime95) are NOT high-noise workloads.
"""

from repro.experiments import figure8

from conftest import run_once


def test_fig8_voltage_noise(benchmark):
    result = run_once(benchmark, figure8)

    print("\n" + result.render())

    pkpk = result.peak_to_peak_v
    power = result.avg_power_w
    virus = result.virus.name

    # The dI/dt virus tops the chart by a wide margin.
    assert pkpk[virus] == max(pkpk.values())
    assert result.virus_margin() > 1.5
    assert pkpk[virus] > pkpk["prime95"] * 2
    assert pkpk[virus] > pkpk["amd_stability_test"] * 1.5

    # The paper's Section VI argument: the highest-power workload is
    # not the highest-noise workload.  Prime95 draws the most power of
    # the baselines but does not lead the noise chart among them.
    baseline_power = {k: v for k, v in power.items() if k != virus}
    assert max(baseline_power, key=baseline_power.get) == "prime95"
    baseline_noise = {k: v for k, v in pkpk.items() if k != virus}
    assert max(baseline_noise, key=baseline_noise.get) != "prime95"

    # The virus is not simply the power maximiser either: it trades
    # sustained current for current *swing*.
    assert power[virus] < max(power.values()) * 1.15

    # The loop length follows the resonance rule of thumb (15-50).
    assert 15 <= len(result.virus.individual) <= 50
