"""Shared benchmark configuration.

Each benchmark regenerates one paper table or figure.  GA searches are
measured with ``benchmark.pedantic(rounds=1)`` — a search is minutes of
simulated measurements, so statistical repetition happens across the
population, not across benchmark rounds.  Evolved viruses are memoised
per (platform, metric, seed, scale), so e.g. Table III reuses the
Figure 5/6 viruses exactly as the paper derives its tables from the
same runs.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated figures.
"""

from __future__ import annotations

import pytest

from repro.experiments import GAScale

#: Stock search effort for the power figures: enough for every paper
#: shape to hold with margin, ~15-30 s per GA search.
POWER_SCALE = GAScale(population_size=24, generations=35)

#: Ablations compare GA configurations against each other and only need
#: relative signal.
ABLATION_SCALE = GAScale(population_size=16, generations=18)


@pytest.fixture(scope="session")
def power_scale():
    return POWER_SCALE


@pytest.fixture(scope="session")
def ablation_scale():
    return ABLATION_SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark ``func`` with a single timed invocation."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
