"""Extension: LLC/DRAM stress (paper Section VII).

"with GeST is possible to stress LLC or DRAM by instructing the
framework to optimize towards cache-misses and providing in the input
file load/store instruction definitions with various strides, base
memory registers and various min-max immediate values.  We are
currently investigating such extensions."

This benchmark runs that investigation on the simulated server: the GA
is given strided load/store definitions plus a base-advance instruction
and optimises LLC misses per kilo-instruction.  The evolved virus must
out-miss both a cache-resident loop and a hand-written streaming
walker.
"""

from repro.experiments import GAScale, llc_stress_experiment

from conftest import run_once


def test_ext_llc_dram_stress(benchmark):
    result = run_once(benchmark, llc_stress_experiment,
                      scale=GAScale(population_size=20, generations=25,
                                    individual_size=30))

    print("\n" + result.render())

    misses = result.llc_misses_per_kinstr()

    # The GA virus leads, the L1-resident loop barely misses at all.
    assert misses["llcVirus"] == max(misses.values())
    assert misses["llcVirus"] > misses["streaming"] * 1.5
    assert misses["l1_resident"] < 5.0
    assert misses["llcVirus"] > 100.0

    # The virus discovered base-advancing (striding) — the paper's
    # "various strides" knob.
    advances = sum(1 for i in result.virus.instructions
                   if i.name == "ADVANCE")
    assert advances >= 1

    # DRAM traffic costs energy: the virus burns more chip power than
    # the resident loop despite lower IPC.
    power = result.avg_power_w()
    assert power["llcVirus"] > power["l1_resident"]
    assert result.runs["llcVirus"].ipc < result.runs["l1_resident"].ipc
