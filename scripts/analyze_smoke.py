#!/usr/bin/env python3
"""Run ``gest analyze`` over every shipped winner and sanity-check it.

Feeds all ``configs/*/results/individuals/*.txt`` sources through the
``analyze`` CLI subcommand (the same entry point users hit), in JSON
mode, against the platform each config targets.  Verifies every source
analyzes cleanly: exit code 0, a well-formed cost block with positive
cycle bounds, a static IPC within the machine's issue width, and
deterministically ordered diagnostics.  Exits non-zero on the first
violation; CI runs this as the analyze-smoke leg.

Usage: PYTHONPATH=src python scripts/analyze_smoke.py
"""

import contextlib
import io
import json
import sys
from pathlib import Path

from repro.cli import main
from repro.cpu.microarch import microarch_for

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Shipped config directory -> analyze platform.
CONFIG_PLATFORMS = {
    "arm_ipc": "cortex_a15",
    "arm_power": "cortex_a15",
    "arm_temperature": "cortex_a15",
    "x86_didt": "athlon_x4",
}


def analyze(path: Path, platform: str) -> dict:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(["analyze", str(path), "--platform", platform,
                     "--json"])
    if code != 0:
        raise SystemExit(f"FAIL {path}: analyze exited {code}\n"
                         f"{out.getvalue()}")
    return json.loads(out.getvalue())


def check(path: Path, platform: str) -> None:
    payload = analyze(path, platform)
    arch = microarch_for(platform)
    cost = payload["cost"]
    if cost["arch"] != platform:
        raise SystemExit(f"FAIL {path}: cost priced for {cost['arch']}")
    if not cost["bound_cycles"] > 0:
        raise SystemExit(f"FAIL {path}: non-positive cycle bound")
    if not 0 < cost["ipc_upper"] <= arch.issue_width + 1e-9:
        raise SystemExit(
            f"FAIL {path}: static IPC {cost['ipc_upper']} outside "
            f"(0, {arch.issue_width}]")
    keys = [(d.get("file") or "", d["code"], d.get("line") or 0)
            for d in payload["diagnostics"]]
    if keys != sorted(keys):
        raise SystemExit(f"FAIL {path}: diagnostics not sorted: {keys}")


def run() -> int:
    total = 0
    for config_dir, platform in sorted(CONFIG_PLATFORMS.items()):
        winners = sorted((REPO_ROOT / "configs" / config_dir / "results"
                          / "individuals").glob("*.txt"))
        if not winners:
            raise SystemExit(f"FAIL: no winners under {config_dir}")
        for path in winners:
            check(path, platform)
        total += len(winners)
        print(f"analyze-smoke: {config_dir}: {len(winners)} winners OK "
              f"({platform})")
    print(f"analyze-smoke: {total} sources analyzed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(run())
