#!/usr/bin/env python3
"""Regenerate the shipped configs/ bundles from the stock catalogs."""

from repro.isa import write_stock_config

COMBOS = [
    ("arm_power", "arm", "power"),
    ("arm_temperature", "arm", "temperature"),
    ("arm_ipc", "arm", "ipc"),
    ("x86_didt", "x86", "didt"),
]

if __name__ == "__main__":
    for name, isa, metric in COMBOS:
        path = write_stock_config(f"configs/{name}", isa, metric,
                                  population_size=20, generations=15)
        print(f"wrote {path}")
