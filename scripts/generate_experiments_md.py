#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from actual experiment-driver output.

Runs every paper experiment at the benchmark scales and records
paper-value vs measured-value per table and figure.  Takes ~4-5 min.

Usage: python scripts/generate_experiments_md.py
"""

import io
import sys
from pathlib import Path

from repro.experiments import (estimate_runtime, figure5, figure6, figure7,
                               figure8, figure9, table3, table4)
from repro.analysis.convergence import generations_to_exceed
from repro.analysis.related_work import related_work_table

sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks"))
from conftest import POWER_SCALE  # noqa: E402


def fmt_norm(d, decimals=3):
    return ", ".join(f"{k}={v:.{decimals}f}"
                     for k, v in sorted(d.items(), key=lambda kv: -kv[1]))


def main() -> None:
    out = io.StringIO()
    w = out.write

    w("# EXPERIMENTS — paper vs reproduction\n\n")
    w("All searches run on the simulated platforms of DESIGN.md at the\n"
      "benchmark scales (population 24-26, 35-45 generations — the\n"
      "paper used population 50 for 70-100 generations on hardware).\n"
      "Absolute units are not comparable with the paper (our substrate\n"
      "is a behavioural model); the *shape* columns are the reproduction\n"
      "targets.  Regenerate this file with\n"
      "`python scripts/generate_experiments_md.py`; every claim below is\n"
      "also asserted by a benchmark in `benchmarks/`.\n\n")

    # ---- Table I ----------------------------------------------------
    from repro.core.config import GAParameters
    ga = GAParameters()
    w("## Table I — GA parameters\n\n")
    w("| parameter | paper | reproduction |\n|---|---|---|\n")
    w(f"| population_size | 50 | {ga.population_size} |\n")
    w(f"| individual size | 15-50 | {ga.individual_size} "
      "(dI/dt searches derive theirs from the resonance rule) |\n")
    w(f"| mutation_rate | 0.02-0.08 | {ga.mutation_rate} "
      "(scaled to ~1 mutation/individual) |\n")
    w(f"| crossover | one point | {ga.crossover_operator} |\n")
    w(f"| elitism | TRUE | {ga.elitism} |\n")
    w(f"| selection | tournament (5) | {ga.parent_selection_method} "
      f"({ga.tournament_size}) |\n\n")

    # ---- Figures 5/6 -------------------------------------------------
    f5 = figure5(scale=POWER_SCALE)
    f6 = figure6(scale=POWER_SCALE)
    w("## Figure 5 — Cortex-A15 power (normalised to coremark)\n\n")
    w("Paper shape: GA virus highest; above the manual stress test and\n"
      "all conventional workloads; the A7 virus is not a good A15\n"
      "stress test.\n\n")
    w(f"Measured (chip W, 2 cores): {fmt_norm(f5.normalized)}\n\n")
    w(f"* GA virus vs manual stress test: x{f5.virus_margin_over_manual():.3f}"
      " (paper: viruses exceed the best manual/conventional workload by"
      " >=10%)\n")
    w(f"* cross virus (A7-evolved) lands at "
      f"{f5.normalized[f5.cross_virus_label]:.3f}, below the manual "
      "stress test — shape holds.\n\n")

    w("## Figure 6 — Cortex-A7 power (normalised to coremark)\n\n")
    w(f"Measured (chip W, 3 cores): {fmt_norm(f6.normalized)}\n\n")
    w(f"* GA virus vs manual stress test: x{f6.virus_margin_over_manual():.3f}\n")
    w(f"* cross virus (A15-evolved) lands at "
      f"{f6.normalized[f6.cross_virus_label]:.3f} — at/below the "
      "conventional workloads, matching the paper's \"different CPU\n"
      "designs require different stress-tests\".\n\n")

    # ---- Table III -----------------------------------------------------
    t3 = table3(scale=POWER_SCALE)
    w("## Table III — instruction breakdown of the power viruses\n\n")
    w("Paper (A15 / A7 out of 50): ShortInt 4/8, LongInt 5/6, "
      "Float-SIMD 22/16, Mem 18/10, Branch 1/10.\n\nMeasured:\n\n```\n")
    w(t3.render())
    w("\n```\n\n")
    a15_mix, a7_mix = t3.a15_mix, t3.a7_mix
    w(f"* Float/SIMD prominent in both ({a15_mix['Float/SIMD']} and "
      f"{a7_mix['Float/SIMD']} of 50). \n")
    w(f"* A7 virus uses more branches than the A15 virus "
      f"({a7_mix['Branch']} vs {a15_mix['Branch']}; paper 10 vs 1) — "
      "the little core is stressed through its branch/fetch power.\n\n")

    # ---- Figure 7 ------------------------------------------------------
    f7 = figure7()
    w("## Figure 7 — X-Gene2 chip temperature (normalised to bodytrack)\n\n")
    w("Paper shape: powerVirus hottest, IPCvirus second, all Parsec/NAS\n"
      "below.\n\nMeasured: ")
    w(fmt_norm(f7.normalized) + "\n\n")
    w(f"* powerVirus over bodytrack: x{f7.normalized['powerVirus']:.3f} "
      "(paper Figure 7 shows roughly +9%).\n\n")

    # ---- Table IV ------------------------------------------------------
    t4 = table4()
    w("## Table IV — power virus vs simple virus vs IPC virus\n\n")
    w("```\n" + t4.render() + "\n```\n\n")
    w("| relative metric | paper | measured |\n|---|---|---|\n")
    w(f"| IPCvirus relative IPC | 1.12 | "
      f"{t4.relative_ipc['IPCvirus']:.2f} |\n")
    w(f"| IPCvirus relative power | 0.88 | "
      f"{t4.relative_power['IPCvirus']:.2f} |\n")
    w(f"| IPCvirus relative temp | 0.94 | "
      f"{t4.relative_temperature['IPCvirus']:.2f} |\n")
    w(f"| simple virus relative power | 0.99 | "
      f"{t4.relative_power['powerVirusSimple']:.2f} |\n")
    w(f"| simple virus relative temp | 1.00 | "
      f"{t4.relative_temperature['powerVirusSimple']:.2f} |\n")
    w(f"| unique instrs (power/simple/IPC) | 21 / 13 / 13 | "
      f"{t4.unique_instructions['powerVirus']} / "
      f"{t4.unique_instructions['powerVirusSimple']} / "
      f"{t4.unique_instructions['IPCvirus']} |\n\n")
    w("**Known deviation:** the IPC gap between the IPC virus and the\n"
      "power virus is ~1% here vs the paper's 12%.  The pipeline model\n"
      "uses perfect renaming and has spare cheap-port capacity, so the\n"
      "power-optimal mix can still fill the 4-wide issue with\n"
      "low-energy fillers; on the real X-Gene2 the memory/long-latency\n"
      "pressure costs IPC.  The power and temperature orderings — the\n"
      "claims Table IV exists to make — fully reproduce.\n\n")

    # ---- Figure 8 ------------------------------------------------------
    f8 = figure8()
    w("## Figure 8 — AMD Athlon voltage noise (max-min, volts)\n\n")
    w("Paper shape: the dI/dt virus clearly outperforms all other\n"
      "workloads including Prime95 and AMD's own stability test.\n\n")
    w("Measured (4 cores, mV): ")
    w(", ".join(f"{k}={v * 1000:.1f}"
                for k, v in sorted(f8.peak_to_peak_v.items(),
                                   key=lambda kv: -kv[1])) + "\n\n")
    w(f"* virus over best baseline: x{f8.virus_margin():.2f}\n")
    w("* Prime95 draws the most power of the baselines but is NOT the\n"
      "  noisiest — the paper's Section VI argument reproduces.\n\n")

    # ---- Figure 9 ------------------------------------------------------
    f9 = figure9()
    w("## Figure 9 — AMD Athlon V_MIN (12.5 mV steps at 3.1 GHz)\n\n")
    w("Paper shape: the dI/dt virus has the highest V_MIN — the\n"
      "strictest stability test, above AMD's test and Prime95.\n\n")
    w("Measured:\n\n```\n")
    from repro.analysis.vmin import vmin_table
    w(vmin_table(list(f9.results.values())))
    w("\n```\n\n")

    # ---- Table V -------------------------------------------------------
    w("## Table V — related-work comparison (static)\n\n```\n")
    w(related_work_table())
    w("\n```\n\n")

    # ---- runtime & convergence ------------------------------------------
    est = estimate_runtime()
    w("## Section IV — runtime model\n\n")
    w(f"Paper: 50 individuals x ~100 generations x ~5 s -> ~7 hours.\n"
      f"Model: {est.measurements} measurements -> "
      f"{est.total_hours:.1f} hours.\n\n")

    from repro.experiments import evolve_virus, make_machine
    from repro.workloads import workload
    virus = evolve_virus("cortex_a15", "power", seed=7, scale=POWER_SCALE)
    machine = make_machine("cortex_a15", seed=777)
    baseline = max(machine.run_source(workload(n, "arm").source,
                                      cores=1).avg_power_w
                   for n in ("coremark", "imdct", "fdct",
                             "a15_manual_stress"))
    crossover = generations_to_exceed(virus.history, baseline)
    w("## Sections IV/V — convergence\n\n")
    w(f"Paper: viruses exceed conventional workloads after 70-100\n"
      f"generations at population 50.  At population "
      f"{POWER_SCALE.population_size} the A15 power search first beats\n"
      f"the strongest baseline at generation {crossover} of "
      f"{POWER_SCALE.generations}.\n")

    # ---- extensions -----------------------------------------------------
    from repro.experiments import (GAScale, llc_stress_experiment,
                                   shared_memory_experiment)
    w("\n## Extension — LLC/DRAM stress (paper Section VII)\n\n")
    llc = llc_stress_experiment(
        scale=GAScale(population_size=20, generations=25,
                      individual_size=30))
    w("```\n" + llc.render() + "\n```\n\n")
    misses = llc.llc_misses_per_kinstr()
    w(f"The GA virus out-misses the hand-written streaming walker by "
      f"x{misses['llcVirus'] / misses['streaming']:.1f} and the "
      "L1-resident loop by three orders of magnitude.\n\n")

    w("## Extension — shared-memory multi-core viruses "
      "(paper Section IV)\n\n")
    shared = shared_memory_experiment(
        scale=GAScale(population_size=20, generations=25))
    w("```\n" + shared.render() + "\n```\n\n")
    power = shared.chip_power_w()
    noc = shared.noc_power_w()
    w(f"Shared-segment traffic raises total chip power by "
      f"{(power['sharedVirus'] / power['privateVirus'] - 1) * 100:.0f}% "
      f"with the NoC contributing "
      f"{noc['sharedVirus'] / power['sharedVirus'] * 100:.0f}% of the "
      "shared virus's total — the MAMPO-style effect the paper "
      "discusses (their simulated NoC reached >33%).\n\n")

    w("## Extension — current-spectrum verification of the dI/dt "
      "mechanism\n\n")
    from repro.analysis import current_spectrum, resonance_band_ratio
    from repro.experiments import didt_scale, make_machine
    from repro.experiments import evolve_virus as _evolve
    machine = make_machine("athlon_x4", seed=909)
    virus = _evolve("athlon_x4", "didt", seed=31,
                    scale=didt_scale(machine))
    program = machine.compile(virus.source, name="didtVirus")
    trace = machine.pipeline.execute(program,
                                     max_cycles=machine.sim_cycles)
    spectrum = current_spectrum(
        machine.power.current_trace_a(program, trace),
        machine.arch.frequency_hz)
    band, fraction = resonance_band_ratio(spectrum,
                                          machine.pdn.resonance_hz)
    w(f"The evolved virus's dominant current component sits at "
      f"{spectrum.dominant_frequency_hz() / 1e6:.1f} MHz against a "
      f"{machine.pdn.resonance_hz / 1e6:.1f} MHz PDN resonance, with "
      f"{fraction * 100:.0f}% of its AC energy in the resonant band — "
      "the paper's \"periodic current surges that match the PDN "
      "resonance\" made directly visible.\n")

    w("\n## Extension — instruction-order sensitivity "
      "(paper Section VII)\n\n")
    from repro.experiments import instruction_order_experiment
    order = instruction_order_experiment(orderings=30, seed=7)
    w(f"Paper (citing [8]): order alone can change power by up to 17% "
      f"at fixed mix and activity.\nMeasured: {order.render()}\n\n")

    w("## Extension — instruction-level vs abstract-workload GA "
      "(Table V argument)\n\n")
    from repro.experiments import abstract_comparison
    comparison = abstract_comparison(
        scale=GAScale(population_size=24, generations=40))
    w("```\n" + comparison.render() + "\n```\n\n")
    w(f"At an identical evaluation budget the instruction-level search "
      f"finds x{comparison.advantage:.2f} the abstract model's best "
      "power — and the abstract search converges earlier (its reduced "
      "design space, which the paper concedes as its advantage) but "
      "plateaus lower because opcodes, operand values and order are "
      "out of its control.\n\n")

    w("## Extension — frequency/voltage shmoo (Figure 9 generalised)"
      "\n\n")
    from repro.analysis import frequency_shmoo, shmoo_table
    from repro.workloads import workload as _workload
    shmoo_machine = make_machine("athlon_x4", seed=700)
    didt = _evolve("athlon_x4", "didt", seed=31,
                   scale=didt_scale(shmoo_machine))
    shmoo_rows = [
        frequency_shmoo(shmoo_machine, didt.source, "didtVirus"),
        frequency_shmoo(shmoo_machine,
                        _workload("prime95", "x86").source, "prime95"),
        frequency_shmoo(shmoo_machine,
                        _workload("coremark", "x86").source, "coremark"),
    ]
    w("```\n" + shmoo_table(shmoo_rows) + "\n```\n\n")
    w("V_MIN rises with clock for every workload and the dI/dt virus "
      "stays the strictest stability test at every frequency; at +15% "
      "clock its V_MIN exceeds the stock 1.35 V supply — the "
      "overclocking verdict a guardband study reads off this table.\n")

    Path("EXPERIMENTS.md").write_text(out.getvalue())
    print("wrote EXPERIMENTS.md")


if __name__ == "__main__":
    main()
