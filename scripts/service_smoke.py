#!/usr/bin/env python3
"""End-to-end smoke test of GeST-as-a-service.

Boots the full service stack in one process: writes a tiny stock
configuration bundle, submits two identical runs to a fresh sqlite
result store, drains them through an :class:`~repro.service.Orchestrator`
with two concurrent worker slots sharing one
:class:`~repro.store.SharedEvaluationCache`, and verifies

* both runs finish with **exactly** the best fitness a direct
  ``gest run`` of the same configuration produces (concurrency and the
  shared cache are observationally invisible),
* the shared cache recorded activity for each run and deduplicated
  entries across them,
* the store ledger is coherent (per-generation rows, winner source,
  event stream ending in ``run_finished``).

Exits non-zero on any mismatch; CI runs this as the service leg.

Usage: PYTHONPATH=src python scripts/service_smoke.py
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.postprocess import run_statistics
from repro.cli import main as gest
from repro.isa.catalogs import write_stock_config
from repro.core.config import parse_config_file
from repro.service import Orchestrator
from repro.store import RunStore

PLATFORM = "xgene2"


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def run(workdir: Path) -> None:
    bundle = write_stock_config(workdir / "bundle", isa="arm",
                                metric="ipc", population_size=6,
                                individual_size=10, generations=3,
                                seed=11)

    print("== direct gest run (reference)")
    direct_results = workdir / "direct"
    rc = gest(["run", str(bundle), "--platform", PLATFORM,
               "--results", str(direct_results), "--quiet"])
    if rc != 0:
        fail(f"direct run exited {rc}")
    direct_best = run_statistics(direct_results).overall_best_fitness
    print(f"direct best fitness: {direct_best:.4f}")

    print("== submit two runs, serve with two concurrent slots")
    store_path = workdir / "gest.sqlite"
    config = parse_config_file(bundle)
    with RunStore(store_path) as store:
        submitted = [store.submit_run(config, platform=PLATFORM)
                     for _ in range(2)]
    orchestrator = Orchestrator(store_path, workers=2,
                                workdir=workdir / "service-results")
    completed = orchestrator.serve_until_idle()
    if sorted(completed) != sorted(submitted):
        fail(f"served {completed}, submitted {submitted}")

    print("== verify stored results against the direct run")
    with RunStore(store_path) as store:
        total_hits = 0
        for run_id in submitted:
            row = store.get_run(run_id)
            if row.status != "finished":
                fail(f"{run_id} ended {row.status}: {row.error}")
            if row.best_fitness != direct_best:
                fail(f"{run_id} best {row.best_fitness} != direct "
                     f"{direct_best}")
            winner = store.winner(run_id)
            if winner is None or winner["fitness"] != direct_best:
                fail(f"{run_id} winner row disagrees with ledger")
            if not winner["source"].strip():
                fail(f"{run_id} winner has no source")
            numbers = [g["number"] for g in store.generations(run_id)]
            if numbers != [0, 1, 2]:
                fail(f"{run_id} generation rows {numbers}")
            kinds = [kind for _, kind, _ in store.events(run_id)]
            if kinds[0] != "run_started" or kinds[-1] != "run_finished":
                fail(f"{run_id} event stream {kinds[:3]}...{kinds[-1:]}")
            hits, misses = store.cache_activity(run_id)
            if hits + misses == 0:
                fail(f"{run_id} recorded no cache activity")
            print(f"{run_id}: best {row.best_fitness:.4f}, "
                  f"cache {hits} hit(s) / {misses} miss(es)")
            total_hits += hits
        if total_hits == 0:
            fail("shared cache produced no hits across the two runs")

    print("OK: concurrent service runs match the direct run exactly")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="gest-service-smoke-") as tmp:
        run(Path(tmp))
    return 0


if __name__ == "__main__":
    sys.exit(main())
