#!/usr/bin/env python3
"""Cross-check the evaluation layer's determinism contract end-to-end.

Runs the shipped arm_power configuration (at a reduced scale) several
times — SerialBackend, ProcessPoolBackend(2), SerialBackend with the
evaluation cache, and SerialBackend with steady-state kernel detection
disabled (full cycle-by-cycle simulation) — and verifies they all
produce identical run histories and bit-identical population binaries.
``--backend batched`` (or ``auto``) swaps the non-reference variants'
executor for the population-vectorized path, checking the batched
render→measure→score pass against the serial loop end-to-end.
The last variant is the tiling contract end-to-end: stopping at a
recurring scheduler state and analytically tiling the detected period
must be observationally invisible to the whole GA.  Exits non-zero on
any mismatch; CI runs this after the parallel test leg.

``--strategy`` runs the cross-check under any registered search
strategy (default ``genetic``) — the determinism contract is
backend-independent for every strategy, not just the GA, and CI's
strategy matrix exercises each one.

Usage: PYTHONPATH=src python scripts/check_parallel_determinism.py \
           [--strategy NAME]
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core.config import parse_config_file
from repro.core.engine import GeneticEngine
from repro.core.loader import instantiate, load_class
from repro.core.output import OutputRecorder
from repro.cpu import SimulatedMachine, SimulatedTarget
from repro.evaluation import (EvaluationCache, ProcessPoolBackend,
                              SerialBackend)
from repro.evaluation.backends import AutoSelectBackend, BatchedBackend
from repro.measurement.base import Measurement
from repro.search import STRATEGIES

CONFIG = Path(__file__).resolve().parent.parent / "configs" / "arm_power" \
    / "config.xml"
GENERATIONS = 4


def run_variant(workdir: Path, name: str, backend, cache,
                steady_state_detection: bool = True,
                strategy: str = "genetic"):
    config = parse_config_file(CONFIG)
    config.ga.generations = GENERATIONS
    config.ga.population_size = 10
    machine = SimulatedMachine("cortex_a15", seed=config.ga.seed or 0,
                               sim_cycles=600,
                               steady_state_detection=steady_state_detection)
    target = SimulatedTarget(machine)
    target.connect()
    measurement = instantiate(config.measurement_class, Measurement,
                              target, config.measurement_params)
    fitness = load_class(config.fitness_class)()
    recorder = OutputRecorder(workdir / name)
    engine = GeneticEngine(config, measurement, fitness,
                           recorder=recorder, backend=backend, cache=cache,
                           strategy=strategy)
    history = engine.run()
    return history, recorder


def main() -> int:
    parser = argparse.ArgumentParser(
        description="evaluation-layer determinism cross-check")
    parser.add_argument("--strategy", default="genetic",
                        choices=STRATEGIES.names(),
                        help="search strategy to run the cross-check "
                             "under (default: genetic)")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "batched", "auto"),
                        help="executor for the non-reference variants "
                             "(default: serial); 'batched' checks the "
                             "population-vectorized pass against the "
                             "serial reference")
    args = parser.parse_args()
    challenger = {
        "serial": SerialBackend,
        "batched": BatchedBackend,
        "auto": AutoSelectBackend,
    }[args.backend]
    failures = 0
    with tempfile.TemporaryDirectory() as raw:
        workdir = Path(raw)
        variants = [
            ("serial", lambda: (SerialBackend(), None), True),
            (args.backend if args.backend != "serial" else "parallel",
             lambda: ((challenger(), None)
                      if args.backend != "serial"
                      else (ProcessPoolBackend(2), None)), True),
            ("cached", lambda: (challenger(),
                                EvaluationCache("cross-check")), True),
            # Full cycle-by-cycle simulation: the steady-state tiling
            # contract says this must be bit-identical to the default.
            ("untiled", lambda: (challenger(), None), False),
        ]
        histories = {}
        recorders = {}
        for name, build, detection in variants:
            backend, cache = build()
            print(f"running {name} variant ({GENERATIONS} generations, "
                  f"{args.strategy} strategy)...", flush=True)
            histories[name], recorders[name] = run_variant(
                workdir, name, backend, cache,
                steady_state_detection=detection,
                strategy=args.strategy)

        reference = histories["serial"]
        for name, _, _ in variants[1:]:
            if histories[name].generations != reference.generations:
                print(f"FAIL: {name} run history differs from serial")
                for serial_g, other_g in zip(reference.generations,
                                             histories[name].generations):
                    if serial_g != other_g:
                        print(f"  first divergence at generation "
                              f"{serial_g.number}:")
                        print(f"    serial: {serial_g}")
                        print(f"    {name}: {other_g}")
                        break
                failures += 1
            else:
                print(f"ok: {name} run history identical to serial")

            serial_files = recorders["serial"].population_files()
            other_files = recorders[name].population_files()
            if len(serial_files) != len(other_files):
                print(f"FAIL: {name} wrote {len(other_files)} population "
                      f"binaries, serial wrote {len(serial_files)}")
                failures += 1
                continue
            mismatched = [
                a.name for a, b in zip(serial_files, other_files)
                if a.read_bytes() != b.read_bytes()
            ]
            if mismatched:
                print(f"FAIL: {name} population binaries differ from "
                      f"serial: {mismatched}")
                failures += 1
            else:
                print(f"ok: {name} population binaries bit-identical "
                      f"({len(serial_files)} files)")

    if failures:
        print(f"\n{failures} determinism check(s) failed")
        return 1
    print("\nall determinism cross-checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
